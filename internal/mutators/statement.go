package mutators

import (
	"fmt"
	"strings"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/muast"
)

// The 27 Statement mutators.
func init() {
	reg("DuplicateBranch",
		"This mutator finds an IfStmt, duplicates one of its branches (then or else), and replaces the other branch with the duplicated one.",
		muast.CatStatement, muast.Supervised, false, duplicateBranch)

	reg("TransformSwitchToIfElse",
		"This mutator identifies a 'switch' statement in the code and transforms it into an equivalent series of 'if-else' statements, effectively altering the control flow structure.",
		muast.CatStatement, muast.Unsupervised, true, transformSwitchToIfElse)

	reg("WrapStmtInIf",
		"This mutator wraps a statement into the then-branch of an always-true if statement.",
		muast.CatStatement, muast.Supervised, false, wrapStmtInIf)

	reg("WrapStmtInDoWhile",
		"This mutator wraps a statement into a do { ... } while (0) loop that executes exactly once.",
		muast.CatStatement, muast.Supervised, true, wrapStmtInDoWhile)

	reg("DeleteStatement",
		"This mutator deletes a randomly selected expression statement from a function body.",
		muast.CatStatement, muast.Supervised, false, deleteStatement)

	reg("DuplicateStatement",
		"This mutator duplicates a randomly selected expression statement, inserting the copy immediately after the original.",
		muast.CatStatement, muast.Supervised, false, duplicateStatement)

	reg("SwapAdjacentStatements",
		"This mutator swaps two adjacent expression statements within the same block.",
		muast.CatStatement, muast.Unsupervised, false, swapAdjacentStatements)

	reg("ForToWhile",
		"This mutator rewrites a for loop into an equivalent while loop, hoisting the init clause and sinking the post clause.",
		muast.CatStatement, muast.Supervised, false, forToWhile)

	reg("WhileToFor",
		"This mutator rewrites a while loop into an equivalent for loop with empty init and post clauses.",
		muast.CatStatement, muast.Supervised, false, whileToFor)

	reg("WhileToDoWhile",
		"This mutator converts a while loop into a do-while loop guarded by an if statement with the same condition.",
		muast.CatStatement, muast.Supervised, false, whileToDoWhile)

	reg("DoWhileToWhile",
		"This mutator converts a do-while loop into a while loop preceded by one unconditional copy of the body.",
		muast.CatStatement, muast.Supervised, false, doWhileToWhile)

	reg("UnrollLoopOnce",
		"This mutator peels one iteration off a while loop, copying the guarded body before the loop.",
		muast.CatStatement, muast.Supervised, true, unrollLoopOnce)

	reg("AddBreakToLoop",
		"This mutator inserts a conditionally dead 'if (0) break;' statement into a loop body.",
		muast.CatStatement, muast.Unsupervised, false, addBreakToLoop)

	reg("AddContinueToLoop",
		"This mutator inserts a conditionally dead 'if (0) continue;' statement into a loop body.",
		muast.CatStatement, muast.Unsupervised, false, addContinueToLoop)

	reg("RemoveElseBranch",
		"This mutator removes the else branch of an if statement.",
		muast.CatStatement, muast.Supervised, false, removeElseBranch)

	reg("AddElseBranch",
		"This mutator adds an empty else branch to an if statement that lacks one.",
		muast.CatStatement, muast.Supervised, false, addElseBranch)

	reg("SwapThenElse",
		"This mutator swaps the then and else branches of an if statement, leaving the condition unchanged.",
		muast.CatStatement, muast.Unsupervised, false, swapThenElse)

	reg("InsertForwardGoto",
		"This mutator inserts a goto that jumps over the next statement to a fresh label placed immediately after it.",
		muast.CatStatement, muast.Supervised, true, insertForwardGoto)

	reg("CaseFallthroughToggle",
		"This mutator removes the trailing break of a switch case, introducing a fall-through to the next case.",
		muast.CatStatement, muast.Supervised, false, caseFallthroughToggle)

	reg("AddDefaultToSwitch",
		"This mutator adds an empty default label to a switch statement that lacks one.",
		muast.CatStatement, muast.Supervised, false, addDefaultToSwitch)

	reg("RemoveDefaultFromSwitch",
		"This mutator removes the default label (and its statement) from a switch statement.",
		muast.CatStatement, muast.Unsupervised, false, removeDefaultFromSwitch)

	reg("MergeNestedIf",
		"This mutator merges a nested if-inside-if into a single if whose condition is the conjunction of both conditions.",
		muast.CatStatement, muast.Supervised, false, mergeNestedIf)

	reg("SplitCompoundCondition",
		"This mutator splits an if statement whose condition is a logical AND into two nested if statements.",
		muast.CatStatement, muast.Unsupervised, false, splitCompoundCondition)

	reg("HoistDeclToTop",
		"This mutator hoists a mid-block variable declaration to the top of its block, leaving an assignment at the original position.",
		muast.CatStatement, muast.Supervised, false, hoistDeclToTop)

	reg("GuardStmtWithOpaquePredicate",
		"This mutator guards a statement with an opaquely true predicate built from an existing integer variable, such as ((x ^ x) == 0).",
		muast.CatStatement, muast.Supervised, true, guardStmtWithOpaquePredicate)

	reg("EmptyLoopBody",
		"This mutator replaces a loop body with an empty statement, keeping the loop header intact.",
		muast.CatStatement, muast.Supervised, false, emptyLoopBody)

	reg("InsertDeadReturn",
		"This mutator inserts an unreachable 'if (0) return ...;' statement at the beginning of a function body.",
		muast.CatStatement, muast.Unsupervised, false, insertDeadReturn)
}

// ifStmts collects if statements under all function bodies.
func ifStmts(m *muast.Manager, pred func(*cast.IfStmt) bool) []*cast.IfStmt {
	var out []*cast.IfStmt
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if is, ok := n.(*cast.IfStmt); ok && (pred == nil || pred(is)) {
				out = append(out, is)
			}
			return true
		})
	}
	return out
}

// loops collects loop statements.
func loops(m *muast.Manager) []cast.Stmt {
	var out []cast.Stmt
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			switch n.(type) {
			case *cast.WhileStmt, *cast.DoStmt, *cast.ForStmt:
				out = append(out, n.(cast.Stmt))
			}
			return true
		})
	}
	return out
}

// loopBody returns the body of a loop statement.
func loopBody(s cast.Stmt) cast.Stmt {
	switch l := s.(type) {
	case *cast.WhileStmt:
		return l.Body
	case *cast.DoStmt:
		return l.Body
	case *cast.ForStmt:
		return l.Body
	}
	return nil
}

// stmtHasDecl reports whether a statement subtree declares anything
// (duplicating it would redeclare).
func stmtHasDecl(s cast.Stmt) bool {
	found := false
	cast.Walk(s, func(n cast.Node) bool {
		if _, ok := n.(*cast.DeclStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// stmtHasLabel reports whether a statement subtree defines a label
// (duplicating it would redefine the label).
func stmtHasLabel(s cast.Stmt) bool {
	found := false
	cast.Walk(s, func(n cast.Node) bool {
		switch n.(type) {
		case *cast.LabelStmt, *cast.CaseStmt, *cast.DefaultStmt:
			found = true
		}
		return !found
	})
	return found
}

func duplicateBranch(m *muast.Manager) bool {
	cands := ifStmts(m, func(is *cast.IfStmt) bool {
		return is.Else != nil &&
			!stmtHasDecl(is.Then) && !stmtHasLabel(is.Then) &&
			!stmtHasDecl(is.Else) && !stmtHasLabel(is.Else)
	})
	if len(cands) == 0 {
		return false
	}
	is := muast.RandElement(m, cands)
	if m.RandBool(0.5) {
		return m.ReplaceNode(is.Else, m.GetSourceText(is.Then))
	}
	return m.ReplaceNode(is.Then, m.GetSourceText(is.Else))
}

func transformSwitchToIfElse(m *muast.Manager) bool {
	// Only switches of the shape { case...: stmts break; ... } with no
	// fall-through and side-effect-free conditions convert directly.
	type caseInfo struct {
		value string
		body  []string
	}
	var cands []*cast.SwitchStmt
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			ss, ok := n.(*cast.SwitchStmt)
			if !ok || !m.IsSideEffectFree(ss.Cond) {
				return true
			}
			if _, ok := ss.Body.(*cast.CompoundStmt); ok && switchIsSimple(ss) {
				cands = append(cands, ss)
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	ss := muast.RandElement(m, cands)
	cond := m.GetSourceText(ss.Cond)
	var cases []caseInfo
	var defaultBody []string
	body := ss.Body.(*cast.CompoundStmt)
	var cur *caseInfo
	inDefault := false
	flush := func() {
		if cur != nil {
			cases = append(cases, *cur)
			cur = nil
		}
	}
	var gather func(s cast.Stmt)
	gather = func(s cast.Stmt) {
		switch x := s.(type) {
		case *cast.CaseStmt:
			flush()
			inDefault = false
			cur = &caseInfo{value: m.GetSourceText(x.Value)}
			if x.Body != nil {
				gather(x.Body)
			}
		case *cast.DefaultStmt:
			flush()
			inDefault = true
			if x.Body != nil {
				gather(x.Body)
			}
		case *cast.BreakStmt:
			// Terminates the current arm; nothing to emit.
		default:
			txt := m.GetSourceText(s)
			if inDefault {
				defaultBody = append(defaultBody, txt)
			} else if cur != nil {
				cur.body = append(cur.body, txt)
			}
		}
	}
	for _, s := range body.Stmts {
		gather(s)
	}
	flush()
	if len(cases) == 0 {
		return false
	}
	var sb strings.Builder
	for i, ci := range cases {
		if i > 0 {
			sb.WriteString(" else ")
		}
		fmt.Fprintf(&sb, "if ((%s) == (%s)) { %s }", cond, ci.value,
			strings.Join(ci.body, " "))
	}
	if len(defaultBody) > 0 {
		fmt.Fprintf(&sb, " else { %s }", strings.Join(defaultBody, " "))
	}
	return m.ReplaceNode(ss, sb.String())
}

// switchIsSimple verifies each case arm ends with break and contains no
// declarations, labels, or nested fallthrough hazards.
func switchIsSimple(ss *cast.SwitchStmt) bool {
	body, ok := ss.Body.(*cast.CompoundStmt)
	if !ok || len(body.Stmts) == 0 {
		return false
	}
	sawCase := false
	lastWasBreak := false
	for _, s := range body.Stmts {
		switch s.(type) {
		case *cast.CaseStmt, *cast.DefaultStmt:
			// A new arm must start after a break (or at the beginning).
			if sawCase && !lastWasBreak {
				return false
			}
			sawCase = true
			lastWasBreak = caseEndsWithBreakOrEmpty(s)
		case *cast.BreakStmt:
			lastWasBreak = true
		case *cast.DeclStmt, *cast.LabelStmt, *cast.GotoStmt, *cast.SwitchStmt:
			return false
		default:
			if !sawCase || stmtHasDecl(s.(cast.Stmt)) || stmtHasLabel(s.(cast.Stmt)) ||
				containsBreakOutsideLoop(s.(cast.Stmt)) {
				return false
			}
			lastWasBreak = false
		}
	}
	return lastWasBreak
}

func caseEndsWithBreakOrEmpty(s cast.Stmt) bool {
	switch x := s.(type) {
	case *cast.CaseStmt:
		if x.Body == nil {
			return false
		}
		_, isBrk := x.Body.(*cast.BreakStmt)
		return isBrk
	case *cast.DefaultStmt:
		if x.Body == nil {
			return false
		}
		_, isBrk := x.Body.(*cast.BreakStmt)
		return isBrk
	}
	return false
}

// containsBreakOutsideLoop reports whether s has a break not enclosed in
// a nested loop/switch (such a break belongs to the outer switch and
// would change meaning if the switch becomes if-else).
func containsBreakOutsideLoop(s cast.Stmt) bool {
	found := false
	var rec func(n cast.Node)
	rec = func(n cast.Node) {
		switch n.(type) {
		case *cast.WhileStmt, *cast.DoStmt, *cast.ForStmt, *cast.SwitchStmt:
			return // breaks below bind to this construct
		case *cast.BreakStmt:
			found = true
			return
		}
		for _, c := range cast.Children(n) {
			rec(c)
		}
	}
	rec(s)
	return found
}

func wrapStmtInIf(m *muast.Manager) bool {
	cands := bodyStmts(m, func(s cast.Stmt) bool {
		switch s.(type) {
		case *cast.ExprStmt, *cast.ReturnStmt, *cast.CompoundStmt:
			return !stmtHasDecl(s) && !stmtHasLabel(s)
		}
		return false
	})
	if len(cands) == 0 {
		return false
	}
	s := muast.RandElement(m, cands)
	return m.ReplaceNode(s, "if (1) { "+m.GetSourceText(s)+" }")
}

func wrapStmtInDoWhile(m *muast.Manager) bool {
	cands := bodyStmts(m, func(s cast.Stmt) bool {
		// return/break/continue inside do-while change meaning; only
		// plain expression statements are safe.
		es, ok := s.(*cast.ExprStmt)
		return ok && !stmtHasLabel(es)
	})
	if len(cands) == 0 {
		return false
	}
	s := muast.RandElement(m, cands)
	return m.ReplaceNode(s, "do { "+m.GetSourceText(s)+" } while (0);")
}

func deleteStatement(m *muast.Manager) bool {
	cands := bodyStmts(m, func(s cast.Stmt) bool {
		_, ok := s.(*cast.ExprStmt)
		return ok && !stmtHasLabel(s)
	})
	if len(cands) == 0 {
		return false
	}
	return m.ReplaceNode(muast.RandElement(m, cands), ";")
}

func duplicateStatement(m *muast.Manager) bool {
	cands := bodyStmts(m, func(s cast.Stmt) bool {
		_, ok := s.(*cast.ExprStmt)
		return ok && !stmtHasLabel(s)
	})
	if len(cands) == 0 {
		return false
	}
	s := muast.RandElement(m, cands)
	txt := m.GetSourceText(s)
	return m.InsertAfter(s, "\n"+m.IndentOf(s.Range().Begin)+txt)
}

func swapAdjacentStatements(m *muast.Manager) bool {
	type pair struct{ a, b cast.Stmt }
	var cands []pair
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			cs, ok := n.(*cast.CompoundStmt)
			if !ok {
				return true
			}
			for i := 0; i+1 < len(cs.Stmts); i++ {
				a, ok1 := cs.Stmts[i].(*cast.ExprStmt)
				b, ok2 := cs.Stmts[i+1].(*cast.ExprStmt)
				if ok1 && ok2 && !stmtHasLabel(a) && !stmtHasLabel(b) {
					cands = append(cands, pair{a, b})
				}
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	p := muast.RandElement(m, cands)
	ta, tb := m.GetSourceText(p.a), m.GetSourceText(p.b)
	return m.ReplaceNode(p.a, tb) && m.ReplaceNode(p.b, ta)
}

func forToWhile(m *muast.Manager) bool {
	var cands []*cast.ForStmt
	for _, l := range loops(m) {
		fs, ok := l.(*cast.ForStmt)
		if !ok {
			continue
		}
		// continue would skip the post clause if sunk into the body.
		if loopBodyHasContinue(fs.Body) {
			continue
		}
		// A DeclStmt init scopes to the for; hoisting into an outer block
		// is only safe when wrapped, which we do below, so allow it.
		cands = append(cands, fs)
	}
	if len(cands) == 0 {
		return false
	}
	fs := muast.RandElement(m, cands)
	var sb strings.Builder
	sb.WriteString("{ ")
	if fs.Init != nil {
		sb.WriteString(strings.TrimSpace(m.GetSourceText(fs.Init)))
		sb.WriteString(" ")
	}
	cond := "1"
	if fs.Cond != nil {
		cond = m.GetSourceText(fs.Cond)
	}
	fmt.Fprintf(&sb, "while (%s) { ", cond)
	sb.WriteString(blockInner(m, fs.Body))
	if fs.Post != nil {
		fmt.Fprintf(&sb, " %s;", m.GetSourceText(fs.Post))
	}
	sb.WriteString(" } }")
	return m.ReplaceNode(fs, sb.String())
}

// loopBodyHasContinue reports whether body contains a continue bound to
// this loop (not a nested one).
func loopBodyHasContinue(body cast.Stmt) bool {
	found := false
	var rec func(n cast.Node)
	rec = func(n cast.Node) {
		switch n.(type) {
		case *cast.WhileStmt, *cast.DoStmt, *cast.ForStmt:
			return
		case *cast.ContinueStmt:
			found = true
			return
		}
		for _, c := range cast.Children(n) {
			rec(c)
		}
	}
	rec(body)
	return found
}

// blockInner renders a loop body without its enclosing braces.
func blockInner(m *muast.Manager, body cast.Stmt) string {
	if cs, ok := body.(*cast.CompoundStmt); ok {
		txt := m.GetSourceText(cs)
		txt = strings.TrimSpace(txt)
		txt = strings.TrimPrefix(txt, "{")
		txt = strings.TrimSuffix(txt, "}")
		return strings.TrimSpace(txt)
	}
	return m.GetSourceText(body)
}

func whileToFor(m *muast.Manager) bool {
	var cands []*cast.WhileStmt
	for _, l := range loops(m) {
		if ws, ok := l.(*cast.WhileStmt); ok {
			cands = append(cands, ws)
		}
	}
	if len(cands) == 0 {
		return false
	}
	ws := muast.RandElement(m, cands)
	return m.ReplaceNode(ws, fmt.Sprintf("for (; %s; ) %s",
		m.GetSourceText(ws.Cond), m.GetSourceText(ws.Body)))
}

func whileToDoWhile(m *muast.Manager) bool {
	var cands []*cast.WhileStmt
	for _, l := range loops(m) {
		if ws, ok := l.(*cast.WhileStmt); ok && m.IsSideEffectFree(ws.Cond) &&
			!stmtHasDecl(ws.Body) && !stmtHasLabel(ws.Body) {
			cands = append(cands, ws)
		}
	}
	if len(cands) == 0 {
		return false
	}
	ws := muast.RandElement(m, cands)
	cond := m.GetSourceText(ws.Cond)
	body := m.GetSourceText(ws.Body)
	return m.ReplaceNode(ws, fmt.Sprintf("if (%s) do %s while (%s);",
		cond, body, cond))
}

func doWhileToWhile(m *muast.Manager) bool {
	var cands []*cast.DoStmt
	for _, l := range loops(m) {
		if ds, ok := l.(*cast.DoStmt); ok &&
			!stmtHasDecl(ds.Body) && !stmtHasLabel(ds.Body) &&
			!loopBodyHasBreakOrContinue(ds.Body) {
			cands = append(cands, ds)
		}
	}
	if len(cands) == 0 {
		return false
	}
	ds := muast.RandElement(m, cands)
	body := m.GetSourceText(ds.Body)
	cond := m.GetSourceText(ds.Cond)
	return m.ReplaceNode(ds, fmt.Sprintf("{ %s while (%s) %s }",
		ensureBlock(body), cond, body))
}

func loopBodyHasBreakOrContinue(body cast.Stmt) bool {
	found := false
	var rec func(n cast.Node)
	rec = func(n cast.Node) {
		switch n.(type) {
		case *cast.WhileStmt, *cast.DoStmt, *cast.ForStmt, *cast.SwitchStmt:
			return
		case *cast.BreakStmt, *cast.ContinueStmt:
			found = true
			return
		}
		for _, c := range cast.Children(n) {
			rec(c)
		}
	}
	rec(body)
	return found
}

// ensureBlock wraps text in braces if it is not already a block.
func ensureBlock(text string) string {
	t := strings.TrimSpace(text)
	if strings.HasPrefix(t, "{") {
		return t
	}
	return "{ " + t + " }"
}

func unrollLoopOnce(m *muast.Manager) bool {
	var cands []*cast.WhileStmt
	for _, l := range loops(m) {
		if ws, ok := l.(*cast.WhileStmt); ok && m.IsSideEffectFree(ws.Cond) &&
			!stmtHasDecl(ws.Body) && !stmtHasLabel(ws.Body) &&
			!loopBodyHasBreakOrContinue(ws.Body) {
			cands = append(cands, ws)
		}
	}
	if len(cands) == 0 {
		return false
	}
	ws := muast.RandElement(m, cands)
	cond := m.GetSourceText(ws.Cond)
	body := m.GetSourceText(ws.Body)
	peeled := fmt.Sprintf("if (%s) %s ", cond, ensureBlock(body))
	return m.InsertBefore(ws, peeled)
}

func addBreakToLoop(m *muast.Manager) bool {
	ls := loops(m)
	if len(ls) == 0 {
		return false
	}
	l := muast.RandElement(m, ls)
	body := loopBody(l)
	if cs, ok := body.(*cast.CompoundStmt); ok {
		if len(cs.Stmts) > 0 {
			anchor := cs.Stmts[0]
			return m.InsertBefore(anchor,
				"if (0) break;\n"+m.IndentOf(anchor.Range().Begin))
		}
		return m.ReplaceNode(cs, "{ if (0) break; }")
	}
	return m.ReplaceNode(body, "{ if (0) break; "+m.GetSourceText(body)+" }")
}

func addContinueToLoop(m *muast.Manager) bool {
	ls := loops(m)
	if len(ls) == 0 {
		return false
	}
	l := muast.RandElement(m, ls)
	body := loopBody(l)
	if cs, ok := body.(*cast.CompoundStmt); ok {
		if len(cs.Stmts) > 0 {
			anchor := cs.Stmts[0]
			return m.InsertBefore(anchor,
				"if (0) continue;\n"+m.IndentOf(anchor.Range().Begin))
		}
		return m.ReplaceNode(cs, "{ if (0) continue; }")
	}
	return m.ReplaceNode(body, "{ if (0) continue; "+m.GetSourceText(body)+" }")
}

func removeElseBranch(m *muast.Manager) bool {
	cands := ifStmts(m, func(is *cast.IfStmt) bool { return is.Else != nil })
	if len(cands) == 0 {
		return false
	}
	is := muast.RandElement(m, cands)
	// Remove from end of then-branch through the else body.
	r := cast.SourceRange{Begin: is.Then.Range().End, End: is.Else.Range().End}
	return m.ReplaceRange(r, "")
}

func addElseBranch(m *muast.Manager) bool {
	cands := ifStmts(m, func(is *cast.IfStmt) bool { return is.Else == nil })
	if len(cands) == 0 {
		return false
	}
	is := muast.RandElement(m, cands)
	return m.InsertAfter(is.Then, " else { ; }")
}

func swapThenElse(m *muast.Manager) bool {
	cands := ifStmts(m, func(is *cast.IfStmt) bool {
		return is.Else != nil &&
			!isElseIf(is.Else) // "else if" text swap would garble syntax
	})
	if len(cands) == 0 {
		return false
	}
	is := muast.RandElement(m, cands)
	tThen, tElse := m.GetSourceText(is.Then), m.GetSourceText(is.Else)
	return m.ReplaceNode(is.Then, ensureBlock(tElse)) &&
		m.ReplaceNode(is.Else, ensureBlock(tThen))
}

func isElseIf(s cast.Stmt) bool {
	_, ok := s.(*cast.IfStmt)
	return ok
}

func insertForwardGoto(m *muast.Manager) bool {
	cands := bodyStmts(m, func(s cast.Stmt) bool {
		_, ok := s.(*cast.ExprStmt)
		return ok && !stmtHasLabel(s)
	})
	if len(cands) == 0 {
		return false
	}
	s := muast.RandElement(m, cands)
	label := m.GenerateUniqueName("skip")
	indent := m.IndentOf(s.Range().Begin)
	if !m.InsertBefore(s, fmt.Sprintf("goto %s;\n%s", label, indent)) {
		return false
	}
	return m.InsertAfter(s, fmt.Sprintf("\n%s%s: ;", indent, label))
}

func caseFallthroughToggle(m *muast.Manager) bool {
	// Find break statements directly inside switch bodies.
	var cands []*cast.BreakStmt
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			ss, ok := n.(*cast.SwitchStmt)
			if !ok {
				return true
			}
			if cs, ok := ss.Body.(*cast.CompoundStmt); ok {
				for i, s := range cs.Stmts {
					if bs, ok := s.(*cast.BreakStmt); ok && i < len(cs.Stmts)-1 {
						cands = append(cands, bs)
					}
				}
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	return m.ReplaceNode(muast.RandElement(m, cands), ";")
}

func addDefaultToSwitch(m *muast.Manager) bool {
	var cands []*cast.SwitchStmt
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			ss, ok := n.(*cast.SwitchStmt)
			if !ok {
				return true
			}
			hasDefault := false
			if cs, ok := ss.Body.(*cast.CompoundStmt); ok {
				for _, s := range cs.Stmts {
					if _, ok := s.(*cast.DefaultStmt); ok {
						hasDefault = true
					}
				}
				if !hasDefault && len(cs.Stmts) > 0 {
					cands = append(cands, ss)
				}
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	ss := muast.RandElement(m, cands)
	cs := ss.Body.(*cast.CompoundStmt)
	// Insert before the closing brace.
	end := cs.Range().End - 1
	return m.ReplaceRange(cast.SourceRange{Begin: end, End: end},
		"default: break;\n")
}

func removeDefaultFromSwitch(m *muast.Manager) bool {
	var cands []*cast.DefaultStmt
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if ds, ok := n.(*cast.DefaultStmt); ok {
				// Only remove a trailing, self-contained default arm.
				if ds.Body != nil && !stmtHasDecl(ds.Body) {
					cands = append(cands, ds)
				}
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	return m.ReplaceNode(muast.RandElement(m, cands), ";")
}

func mergeNestedIf(m *muast.Manager) bool {
	cands := ifStmts(m, func(is *cast.IfStmt) bool {
		if is.Else != nil {
			return false
		}
		inner, ok := is.Then.(*cast.IfStmt)
		if !ok {
			// Also accept { if (...) ... } with a single statement.
			cs, ok := is.Then.(*cast.CompoundStmt)
			if !ok || len(cs.Stmts) != 1 {
				return false
			}
			inner, ok = cs.Stmts[0].(*cast.IfStmt)
			if !ok {
				return false
			}
		}
		return inner.Else == nil
	})
	if len(cands) == 0 {
		return false
	}
	is := muast.RandElement(m, cands)
	inner, ok := is.Then.(*cast.IfStmt)
	if !ok {
		inner = is.Then.(*cast.CompoundStmt).Stmts[0].(*cast.IfStmt)
	}
	return m.ReplaceNode(is, fmt.Sprintf("if ((%s) && (%s)) %s",
		m.GetSourceText(is.Cond), m.GetSourceText(inner.Cond),
		ensureBlock(m.GetSourceText(inner.Then))))
}

func splitCompoundCondition(m *muast.Manager) bool {
	cands := ifStmts(m, func(is *cast.IfStmt) bool {
		if is.Else != nil {
			return false
		}
		bo, ok := stripParens(is.Cond).(*cast.BinaryOperator)
		return ok && bo.Op == cast.BinLAnd
	})
	if len(cands) == 0 {
		return false
	}
	is := muast.RandElement(m, cands)
	bo := stripParens(is.Cond).(*cast.BinaryOperator)
	return m.ReplaceNode(is, fmt.Sprintf("if (%s) { if (%s) %s }",
		m.GetSourceText(bo.LHS), m.GetSourceText(bo.RHS),
		ensureBlock(m.GetSourceText(is.Then))))
}

func hoistDeclToTop(m *muast.Manager) bool {
	pm := m.Parents()
	type inst struct {
		ds    *cast.DeclStmt
		vd    *cast.VarDecl
		block *cast.CompoundStmt
	}
	var cands []inst
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			cs, ok := n.(*cast.CompoundStmt)
			if !ok {
				return true
			}
			for i, s := range cs.Stmts {
				if i == 0 {
					continue // already at top
				}
				ds, ok := s.(*cast.DeclStmt)
				if !ok || len(ds.Decls) != 1 {
					continue
				}
				vd, ok := ds.Decls[0].(*cast.VarDecl)
				if !ok || vd.Init == nil || !simpleScalar(vd.Ty) ||
					vd.Ty.Q != 0 || vd.Storage != cast.StorageNone {
					continue
				}
				// The name must not already be visible at block top.
				if nameUsedBefore(m, cs, i, vd.Name) {
					continue
				}
				cands = append(cands, inst{ds, vd, cs})
			}
			return true
		})
	}
	_ = pm
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	decl := m.FormatAsDecl(c.vd.Ty, c.vd.Name) + ";"
	assign := fmt.Sprintf("%s = %s;", c.vd.Name, m.GetSourceText(c.vd.Init))
	first := c.block.Stmts[0]
	if !m.InsertBefore(first, decl+"\n"+m.IndentOf(first.Range().Begin)) {
		return false
	}
	return m.ReplaceNode(c.ds, assign)
}

// nameUsedBefore reports whether name is referenced in block statements
// before index i (which would then bind to a different declaration).
func nameUsedBefore(m *muast.Manager, cs *cast.CompoundStmt, i int, name string) bool {
	for j := 0; j < i; j++ {
		used := false
		cast.Walk(cs.Stmts[j], func(n cast.Node) bool {
			switch x := n.(type) {
			case *cast.DeclRefExpr:
				if x.Name == name {
					used = true
				}
			case *cast.VarDecl:
				if x.Name == name {
					used = true
				}
			}
			return !used
		})
		if used {
			return true
		}
	}
	return false
}

func guardStmtWithOpaquePredicate(m *muast.Manager) bool {
	pm := m.Parents()
	type inst struct {
		s  cast.Stmt
		nm string
	}
	var cands []inst
	for _, fn := range m.Functions() {
		// Need an in-scope integer variable: use a parameter.
		var intVar string
		for _, pv := range fn.Params {
			if pv.Name != "" && pv.Ty.IsInteger() {
				intVar = pv.Name
				break
			}
		}
		if intVar == "" {
			continue
		}
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if cs, ok := n.(*cast.CompoundStmt); ok {
				for _, s := range cs.Stmts {
					if es, ok := s.(*cast.ExprStmt); ok && !stmtHasLabel(es) {
						cands = append(cands, inst{es, intVar})
					}
				}
			}
			return true
		})
	}
	_ = pm
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	return m.ReplaceNode(c.s, fmt.Sprintf("if (((%s ^ %s) == 0)) { %s }",
		c.nm, c.nm, m.GetSourceText(c.s)))
}

func emptyLoopBody(m *muast.Manager) bool {
	var cands []cast.Stmt
	for _, l := range loops(m) {
		// Emptying a while/do body whose condition never changes would
		// hang at runtime, but the paper's validation only requires the
		// mutant to compile; still, restrict to for loops with a post
		// clause so termination behavior is usually preserved.
		if fs, ok := l.(*cast.ForStmt); ok && fs.Post != nil {
			if !stmtHasLabel(fs.Body) {
				cands = append(cands, fs.Body)
			}
		}
	}
	if len(cands) == 0 {
		return false
	}
	return m.ReplaceNode(muast.RandElement(m, cands), "{ ; }")
}

func insertDeadReturn(m *muast.Manager) bool {
	var cands []*cast.FunctionDecl
	for _, fn := range m.Functions() {
		if len(fn.Body.Stmts) > 0 {
			cands = append(cands, fn)
		}
	}
	if len(cands) == 0 {
		return false
	}
	fn := muast.RandElement(m, cands)
	ret := "return;"
	if !fn.Ret.IsVoid() {
		ret = "return " + m.DefaultValueExpr(fn.Ret) + ";"
	}
	first := fn.Body.Stmts[0]
	return m.InsertBefore(first,
		fmt.Sprintf("if (0) %s\n%s", ret, m.IndentOf(first.Range().Begin)))
}
