package mutators

import (
	"fmt"
	"strings"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/muast"
)

// The 19 Function mutators.
func init() {
	reg("ModifyFunctionReturnTypeToVoid",
		"Change a function's return type to void, remove all return statements, and replace all uses of the function's result with a default value.",
		muast.CatFunction, muast.Supervised, true, modifyFunctionReturnTypeToVoid)

	reg("SimpleUninliner",
		"Turn a block of code into a function call.",
		muast.CatFunction, muast.Supervised, true, simpleUninliner)

	reg("InlineFunctionCall",
		"This mutator inlines a call to a constant-returning function, replacing the call expression with the returned constant.",
		muast.CatFunction, muast.Supervised, true, inlineFunctionCall)

	reg("AddFunctionParameter",
		"This mutator adds a new integer parameter to a function and passes a default argument at every call site.",
		muast.CatFunction, muast.Supervised, false, addFunctionParameter)

	reg("RemoveFunctionParameter",
		"This mutator removes an unused parameter from a function declaration and drops the corresponding argument at every call site.",
		muast.CatFunction, muast.Supervised, false, removeFunctionParameter)

	reg("ReorderFunctionParameters",
		"This mutator swaps two parameters of the same type in a function declaration and swaps the corresponding arguments at every call site.",
		muast.CatFunction, muast.Unsupervised, false, reorderFunctionParameters)

	reg("DuplicateFunction",
		"This mutator duplicates a function definition under a fresh name and retargets one call site to the copy.",
		muast.CatFunction, muast.Supervised, false, duplicateFunction)

	reg("RenameFunction",
		"This mutator renames a function definition and all of its call sites to a fresh unique identifier.",
		muast.CatFunction, muast.Unsupervised, false, renameFunction)

	reg("MakeFunctionStatic",
		"This mutator adds the static storage class to a function definition, giving it internal linkage.",
		muast.CatFunction, muast.Supervised, false, makeFunctionStatic)

	reg("WrapFunctionBody",
		"This mutator wraps the entire body of a function in an extra nested block.",
		muast.CatFunction, muast.Unsupervised, true, wrapFunctionBody)

	reg("CallViaPointerDeref",
		"This mutator rewrites a direct call f(args) into the explicit function-pointer form (*f)(args).",
		muast.CatFunction, muast.Unsupervised, true, callViaPointerDeref)

	reg("ChangeReturnExpr",
		"This mutator perturbs the expression of a return statement while keeping its type.",
		muast.CatFunction, muast.Supervised, false, changeReturnExpr)

	reg("AddVoidWrapperFunction",
		"This mutator creates a wrapper function that forwards to an existing function, and retargets one call site through the wrapper.",
		muast.CatFunction, muast.Supervised, true, addVoidWrapperFunction)

	reg("SwapFunctionBodies",
		"This mutator swaps the bodies of two functions that have identical signatures.",
		muast.CatFunction, muast.Unsupervised, true, swapFunctionBodies)

	reg("AddPrototypeBeforeUse",
		"This mutator emits an explicit prototype at the top of the file for a function defined later.",
		muast.CatFunction, muast.Supervised, false, addPrototypeBeforeUse)

	reg("MakeParamsConst",
		"This mutator adds a const qualifier to a scalar parameter that is never written.",
		muast.CatFunction, muast.Unsupervised, false, makeParamsConst)

	reg("ReturnConstantFunction",
		"This mutator replaces the body of a non-void function with a single return of a default constant.",
		muast.CatFunction, muast.Unsupervised, false, returnConstantFunction)

	reg("ExtractExprToHelper",
		"This mutator extracts a side-effect-free expression over globals into a new helper function and replaces the expression with a call.",
		muast.CatFunction, muast.Supervised, true, extractExprToHelper)

	reg("AddInlineSpecifier",
		"This mutator adds the inline specifier to a static function definition.",
		muast.CatFunction, muast.Supervised, false, addInlineSpecifier)
}

// modifyFunctionReturnTypeToVoid is the paper's running example (Ret2V,
// Figures 3-5): change a function's return type to void, strip its return
// statements, and rewrite every call-site use with a constant.
func modifyFunctionReturnTypeToVoid(m *muast.Manager) bool {
	var cands []*cast.FunctionDecl
	for _, fn := range m.Functions() {
		if fn.Ret.IsVoid() || fn.Name == "main" || !simpleScalar(fn.Ret) {
			continue
		}
		if fn.Storage == cast.StorageTypedef {
			continue
		}
		// Skip functions with a separate prototype: rewriting only the
		// definition would leave conflicting declarations.
		if hasSeparatePrototype(m, fn) {
			continue
		}
		cands = append(cands, fn)
	}
	if len(cands) == 0 {
		return false
	}
	fn := muast.RandElement(m, cands)

	// Change the return type to void (keep storage-class words by
	// replacing only the type spelling region minus the name).
	if !m.ReplaceRange(fn.RetTypeRange, retTypePrefix(fn)+"void ") {
		return false
	}
	// Remove all return statements (of THIS function — the fix GPT-4
	// needed two refinement rounds to get right, Figure 4).
	for _, rs := range m.ReturnsOf(fn) {
		if rs.Value != nil {
			if !m.ReplaceNode(rs, ";") {
				return false
			}
		}
	}
	// Replace all calls with a constant of the former return type.
	repl := "0"
	if fn.Ret.IsFloating() {
		repl = "0.0"
	}
	pm := m.Parents()
	for _, call := range m.CallsTo(fn) {
		if es, ok := pm[call].(*cast.ExprStmt); ok {
			// A statement-position call can simply keep calling.
			_ = es
			continue
		}
		if !m.ReplaceNode(call, repl) {
			return false
		}
	}
	return true
}

// retTypePrefix preserves storage-class/inline words when rewriting a
// function's return-type spelling.
func retTypePrefix(fn *cast.FunctionDecl) string {
	var parts []string
	if fn.Storage != cast.StorageNone {
		parts = append(parts, fn.Storage.String())
	}
	if fn.Inline {
		parts = append(parts, "inline")
	}
	if len(parts) == 0 {
		return ""
	}
	return strings.Join(parts, " ") + " "
}

// hasSeparatePrototype reports whether fn has a prototype declaration
// elsewhere in the file.
func hasSeparatePrototype(m *muast.Manager, fn *cast.FunctionDecl) bool {
	for _, d := range m.TU.Decls {
		if fd, ok := d.(*cast.FunctionDecl); ok && fd != fn && fd.Name == fn.Name {
			return true
		}
	}
	return false
}

func simpleUninliner(m *muast.Manager) bool {
	pm := m.Parents()
	type inst struct {
		s  cast.Stmt
		fn *cast.FunctionDecl
	}
	var cands []inst
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			cs, ok := n.(*cast.CompoundStmt)
			if !ok {
				return true
			}
			for _, s := range cs.Stmts {
				es, ok := s.(*cast.ExprStmt)
				if !ok || stmtHasLabel(es) {
					continue
				}
				// Outlined code may only touch globals: no local refs.
				if usesAnyLocal(pm, es) {
					continue
				}
				cands = append(cands, inst{es, fn})
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	name := m.GenerateUniqueName("uninlined")
	body := m.GetSourceText(c.s)
	helper := fmt.Sprintf("static void %s(void) { %s }\n", name, body)
	if !m.InsertBefore(c.fn, helper) {
		return false
	}
	return m.ReplaceNode(c.s, name+"();")
}

// usesAnyLocal reports whether the subtree references any local variable
// or parameter.
func usesAnyLocal(pm cast.ParentMap, n cast.Node) bool {
	found := false
	cast.Walk(n, func(c cast.Node) bool {
		if dr, ok := c.(*cast.DeclRefExpr); ok {
			switch d := dr.Ref.(type) {
			case *cast.VarDecl:
				if !d.IsGlobal {
					found = true
				}
			case *cast.ParmVarDecl:
				found = true
			}
		}
		return !found
	})
	return found
}

func inlineFunctionCall(m *muast.Manager) bool {
	// Callees whose body is exactly "return <constant>;".
	constOf := map[*cast.FunctionDecl]string{}
	for _, fn := range m.Functions() {
		if len(fn.Body.Stmts) != 1 {
			continue
		}
		rs, ok := fn.Body.Stmts[0].(*cast.ReturnStmt)
		if !ok || rs.Value == nil {
			continue
		}
		if v, ok := cast.ConstIntValue(rs.Value); ok {
			constOf[fn] = fmt.Sprintf("%d", v)
		}
	}
	type inst struct {
		call *cast.CallExpr
		text string
	}
	var cands []inst
	pm := m.Parents()
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			ce, ok := n.(*cast.CallExpr)
			if !ok || ce.Callee == nil {
				return true
			}
			for callee, v := range constOf {
				if ce.Callee.Name == callee.Name {
					// Arguments must be side-effect free to drop.
					safe := true
					for _, a := range ce.Args {
						if !m.IsSideEffectFree(a) {
							safe = false
						}
					}
					if safe && !parentRequiresLvalue(pm, ce) {
						cands = append(cands, inst{ce, v})
					}
				}
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	return m.ReplaceNode(c.call, "("+c.text+")")
}

func addFunctionParameter(m *muast.Manager) bool {
	var cands []*cast.FunctionDecl
	for _, fn := range m.Functions() {
		if fn.Name == "main" || fn.Variadic || hasSeparatePrototype(m, fn) {
			continue
		}
		cands = append(cands, fn)
	}
	if len(cands) == 0 {
		return false
	}
	fn := muast.RandElement(m, cands)
	pname := m.GenerateUniqueName("extra")
	src := m.RW.Source()
	// Locate the parameter list parens after the name.
	open := m.FindStrLocFrom(fn.NameRange.End, "(")
	if open < 0 {
		return false
	}
	if len(fn.Params) == 0 {
		// "(void)" or "()" — replace contents.
		closeIdx := m.FindStrLocFrom(open, ")")
		if closeIdx < 0 {
			return false
		}
		if !m.ReplaceRange(cast.SourceRange{Begin: open + 1, End: closeIdx},
			"int "+pname) {
			return false
		}
	} else {
		last := fn.Params[len(fn.Params)-1]
		if !m.InsertAfter(last, ", int "+pname) {
			return false
		}
	}
	_ = src
	for _, call := range m.CallsTo(fn) {
		if len(call.Args) == 0 {
			// Insert before the closing paren.
			end := call.Range().End - 1
			if !m.ReplaceRange(cast.SourceRange{Begin: end, End: end}, "0") {
				return false
			}
		} else {
			if !m.InsertAfter(call.Args[len(call.Args)-1], ", 0") {
				return false
			}
		}
	}
	return true
}

func removeFunctionParameter(m *muast.Manager) bool {
	type inst struct {
		fn *cast.FunctionDecl
		pv *cast.ParmVarDecl
	}
	var cands []inst
	for _, fn := range m.Functions() {
		if fn.Variadic || hasSeparatePrototype(m, fn) {
			continue
		}
		for _, pv := range fn.Params {
			if len(m.UsesOf(pv)) == 0 {
				cands = append(cands, inst{fn, pv})
			}
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	if !m.RemoveParmFromFuncDecl(c.fn, c.pv) {
		return false
	}
	for _, call := range m.CallsTo(c.fn) {
		if c.pv.Index < len(call.Args) {
			if !m.RemoveArgFromExpr(call, c.pv.Index) {
				return false
			}
		}
	}
	return true
}

func reorderFunctionParameters(m *muast.Manager) bool {
	type inst struct {
		fn   *cast.FunctionDecl
		i, j int
	}
	var cands []inst
	for _, fn := range m.Functions() {
		if fn.Variadic || hasSeparatePrototype(m, fn) {
			continue
		}
		for i := 0; i < len(fn.Params); i++ {
			for j := i + 1; j < len(fn.Params); j++ {
				if fn.Params[i].Name != "" && fn.Params[j].Name != "" &&
					sameScalarType(fn.Params[i].Ty, fn.Params[j].Ty) {
					cands = append(cands, inst{fn, i, j})
				}
			}
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	pi, pj := c.fn.Params[c.i], c.fn.Params[c.j]
	ti, tj := m.GetSourceText(pi), m.GetSourceText(pj)
	if !m.ReplaceNode(pi, tj) || !m.ReplaceNode(pj, ti) {
		return false
	}
	for _, call := range m.CallsTo(c.fn) {
		if c.j >= len(call.Args) {
			continue
		}
		ai, aj := call.Args[c.i], call.Args[c.j]
		tai, taj := m.GetSourceText(ai), m.GetSourceText(aj)
		if !m.ReplaceNode(ai, taj) || !m.ReplaceNode(aj, tai) {
			return false
		}
	}
	return true
}

func duplicateFunction(m *muast.Manager) bool {
	type inst struct {
		fn   *cast.FunctionDecl
		call *cast.CallExpr
	}
	var cands []inst
	for _, fn := range m.Functions() {
		if fn.Name == "main" {
			continue
		}
		for _, call := range m.CallsTo(fn) {
			cands = append(cands, inst{fn, call})
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	fresh := m.GenerateUniqueName(c.fn.Name + "_copy")
	text := m.GetSourceText(c.fn)
	// Rename inside the copied text: replace the first occurrence of the
	// original name (the definition header).
	idx := strings.Index(text, c.fn.Name)
	if idx < 0 {
		return false
	}
	copyText := text[:idx] + fresh + text[idx+len(c.fn.Name):]
	if !m.InsertBefore(c.fn, "static "+strings.TrimPrefix(copyText, "static ")+"\n") {
		return false
	}
	// Retarget one call.
	if dr, ok := c.call.Fn.(*cast.DeclRefExpr); ok {
		return m.ReplaceNode(dr, fresh)
	}
	return false
}

func renameFunction(m *muast.Manager) bool {
	var cands []*cast.FunctionDecl
	for _, fn := range m.Functions() {
		if fn.Name != "main" && !hasSeparatePrototype(m, fn) {
			cands = append(cands, fn)
		}
	}
	if len(cands) == 0 {
		return false
	}
	fn := muast.RandElement(m, cands)
	fresh := m.GenerateUniqueName(fn.Name)
	if !m.ReplaceRange(fn.NameRange, fresh) {
		return false
	}
	for _, u := range m.UsesOf(fn) {
		if !m.ReplaceNode(u, fresh) {
			return false
		}
	}
	return true
}

func makeFunctionStatic(m *muast.Manager) bool {
	var cands []*cast.FunctionDecl
	for _, fn := range m.Functions() {
		if fn.Storage == cast.StorageNone && fn.Name != "main" &&
			!hasSeparatePrototype(m, fn) {
			cands = append(cands, fn)
		}
	}
	if len(cands) == 0 {
		return false
	}
	return m.InsertBefore(muast.RandElement(m, cands), "static ")
}

func wrapFunctionBody(m *muast.Manager) bool {
	fns := m.Functions()
	if len(fns) == 0 {
		return false
	}
	fn := muast.RandElement(m, fns)
	return m.InsertBefore(fn.Body, "{ ") && m.InsertAfter(fn.Body, " }")
}

func callViaPointerDeref(m *muast.Manager) bool {
	var cands []*cast.CallExpr
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if ce, ok := n.(*cast.CallExpr); ok && ce.Callee != nil {
				if _, isRef := ce.Fn.(*cast.DeclRefExpr); isRef {
					cands = append(cands, ce)
				}
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	ce := muast.RandElement(m, cands)
	return m.ReplaceNode(ce.Fn, "(*"+m.GetSourceText(ce.Fn)+")")
}

func changeReturnExpr(m *muast.Manager) bool {
	var cands []*cast.ReturnStmt
	for _, fn := range m.Functions() {
		if !fn.Ret.IsInteger() {
			continue
		}
		for _, rs := range m.ReturnsOf(fn) {
			if rs.Value != nil && rs.Value.Type().IsInteger() {
				cands = append(cands, rs)
			}
		}
	}
	if len(cands) == 0 {
		return false
	}
	rs := muast.RandElement(m, cands)
	txt := m.GetSourceText(rs.Value)
	forms := []string{"(%s) + 1", "-(%s)", "~(%s)", "(%s) ^ 1"}
	return m.ReplaceNode(rs.Value, fmt.Sprintf(muast.RandElement(m, forms), txt))
}

func addVoidWrapperFunction(m *muast.Manager) bool {
	type inst struct {
		fn   *cast.FunctionDecl
		call *cast.CallExpr
	}
	var cands []inst
	pm := m.Parents()
	for _, fn := range m.Functions() {
		if fn.Name == "main" || fn.Variadic {
			continue
		}
		for _, call := range m.CallsTo(fn) {
			// Wrapper forwards arguments; keep it simple with scalars.
			ok := true
			for _, pv := range fn.Params {
				if !simpleScalar(pv.Ty) && !pv.Ty.IsPointer() {
					ok = false
				}
			}
			if ok {
				cands = append(cands, inst{fn, call})
			}
		}
	}
	_ = pm
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	wrapper := m.GenerateUniqueName(c.fn.Name + "_wrap")
	var params, args []string
	for i, pv := range c.fn.Params {
		nm := fmt.Sprintf("a%d", i)
		params = append(params, m.FormatAsDecl(pv.Ty, nm))
		args = append(args, nm)
	}
	if len(params) == 0 {
		params = []string{"void"}
	}
	bodyCall := fmt.Sprintf("%s(%s)", c.fn.Name, strings.Join(args, ", "))
	var def string
	if c.fn.Ret.IsVoid() {
		def = fmt.Sprintf("static void %s(%s) { %s; }\n",
			wrapper, strings.Join(params, ", "), bodyCall)
	} else {
		def = fmt.Sprintf("static %s(%s) { return %s; }\n",
			m.FormatAsDecl(c.fn.Ret, wrapper), strings.Join(params, ", "), bodyCall)
	}
	// The wrapper must come after the callee's definition to see it.
	if !m.InsertAfter(c.fn, "\n"+def) {
		return false
	}
	if dr, ok := c.call.Fn.(*cast.DeclRefExpr); ok {
		// Only retarget calls that appear after the wrapper definition.
		if dr.Range().Begin > c.fn.Range().End {
			return m.ReplaceNode(dr, wrapper)
		}
	}
	return true
}

func swapFunctionBodies(m *muast.Manager) bool {
	fns := m.Functions()
	type pair struct{ a, b *cast.FunctionDecl }
	var cands []pair
	for i := 0; i < len(fns); i++ {
		for j := i + 1; j < len(fns); j++ {
			if sameSignature(fns[i], fns[j]) &&
				!bodyRefersToParamsMismatch(m, fns[i], fns[j]) &&
				!bodyRefersToParamsMismatch(m, fns[j], fns[i]) {
				cands = append(cands, pair{fns[i], fns[j]})
			}
		}
	}
	if len(cands) == 0 {
		return false
	}
	p := muast.RandElement(m, cands)
	ta, tb := m.GetSourceText(p.a.Body), m.GetSourceText(p.b.Body)
	return m.ReplaceNode(p.a.Body, tb) && m.ReplaceNode(p.b.Body, ta)
}

func sameSignature(a, b *cast.FunctionDecl) bool {
	if !cast.SameType(a.Ret, b.Ret) || len(a.Params) != len(b.Params) ||
		a.Variadic != b.Variadic {
		return false
	}
	for i := range a.Params {
		if !cast.SameType(a.Params[i].Ty, b.Params[i].Ty) ||
			a.Params[i].Name != b.Params[i].Name {
			return false
		}
	}
	return true
}

// bodyRefersToParamsMismatch reports whether a's body references names
// that b's scope would not provide (locals are self-contained; only
// parameter names matter, and sameSignature already matches them — this
// catches references to a's own name for recursion).
func bodyRefersToParamsMismatch(m *muast.Manager, a, b *cast.FunctionDecl) bool {
	found := false
	cast.Walk(a.Body, func(n cast.Node) bool {
		if dr, ok := n.(*cast.DeclRefExpr); ok && dr.Name == a.Name {
			found = true
		}
		return !found
	})
	return found
}

func addPrototypeBeforeUse(m *muast.Manager) bool {
	var cands []*cast.FunctionDecl
	for _, fn := range m.Functions() {
		if fn.Name == "main" || hasSeparatePrototype(m, fn) || fn.Variadic {
			continue
		}
		cands = append(cands, fn)
	}
	if len(cands) == 0 {
		return false
	}
	fn := muast.RandElement(m, cands)
	var params []string
	for _, pv := range fn.Params {
		params = append(params, m.FormatAsDecl(pv.Ty, pv.Name))
	}
	if len(params) == 0 {
		params = []string{"void"}
	}
	proto := fmt.Sprintf("%s%s(%s);\n", retTypePrefix(fn),
		m.FormatAsDecl(fn.Ret, fn.Name), strings.Join(params, ", "))
	if len(m.TU.Decls) == 0 {
		return false
	}
	return m.InsertBefore(m.TU.Decls[0], proto)
}

func makeParamsConst(m *muast.Manager) bool {
	pm := m.Parents()
	type inst struct{ pv *cast.ParmVarDecl }
	var cands []inst
	for _, fn := range m.Functions() {
		if hasSeparatePrototype(m, fn) {
			continue
		}
		for _, pv := range fn.Params {
			if pv.Name == "" || !simpleScalar(pv.Ty) || pv.Ty.Q&cast.QualConst != 0 {
				continue
			}
			written := false
			for _, u := range m.UsesOf(pv) {
				if parentRequiresLvalue(pm, u) {
					written = true
					break
				}
			}
			if !written {
				cands = append(cands, inst{pv})
			}
		}
	}
	if len(cands) == 0 {
		return false
	}
	return m.InsertBefore(muast.RandElement(m, cands).pv, "const ")
}

func returnConstantFunction(m *muast.Manager) bool {
	var cands []*cast.FunctionDecl
	for _, fn := range m.Functions() {
		if fn.Name != "main" && simpleScalar(fn.Ret) && !fn.Ret.IsVoid() {
			cands = append(cands, fn)
		}
	}
	if len(cands) == 0 {
		return false
	}
	fn := muast.RandElement(m, cands)
	return m.ReplaceNode(fn.Body,
		fmt.Sprintf("{ return %s; }", m.DefaultValueExpr(fn.Ret)))
}

func extractExprToHelper(m *muast.Manager) bool {
	pm := m.Parents()
	type inst struct {
		e  cast.Expr
		fn *cast.FunctionDecl
	}
	var cands []inst
	for _, e := range mutableIntExprs(m) {
		if usesAnyLocal(pm, e) {
			continue
		}
		if _, isLit := e.(*cast.IntegerLiteral); isLit {
			continue // extracting bare literals is noise
		}
		if inConstantContext(pm, e) {
			continue
		}
		fn := pm.EnclosingFunction(e)
		if fn != nil {
			cands = append(cands, inst{e, fn})
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	name := m.GenerateUniqueName("helper")
	ty := c.e.Type().Unqualified()
	helper := fmt.Sprintf("static %s(void) { return %s; }\n",
		m.FormatAsDecl(ty, name), m.GetSourceText(c.e))
	if !m.InsertBefore(c.fn, helper) {
		return false
	}
	return m.ReplaceNode(c.e, name+"()")
}

func addInlineSpecifier(m *muast.Manager) bool {
	var cands []*cast.FunctionDecl
	for _, fn := range m.Functions() {
		// Plain "inline" without static has tricky C99 linkage semantics;
		// restrict to static functions where it is always safe.
		if fn.Storage == cast.StorageStatic && !fn.Inline {
			cands = append(cands, fn)
		}
	}
	if len(cands) == 0 {
		return false
	}
	fn := muast.RandElement(m, cands)
	// Insert after "static ".
	loc := m.FindStrLocFrom(fn.Range().Begin, "static")
	if loc < 0 {
		return false
	}
	return m.ReplaceRange(cast.SourceRange{Begin: loc + 6, End: loc + 6}, " inline")
}
