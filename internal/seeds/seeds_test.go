package seeds

import (
	"testing"

	"github.com/icsnju/metamut-go/internal/cast"
)

func TestAllSeedsCompile(t *testing.T) {
	for i, src := range Generate(300, 42) {
		if _, err := cast.ParseAndCheck(src); err != nil {
			t.Errorf("seed %d invalid: %v\n%s", i, err, src)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(50, 7)
	b := Generate(50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d differs between runs", i)
		}
	}
	c := Generate(50, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	// The hand-written prefix is shared; synthesized seeds must differ.
	if same > len(handWritten) {
		t.Errorf("%d seeds identical across different base seeds", same)
	}
}

func TestGenerateCount(t *testing.T) {
	for _, n := range []int{0, 1, 3, 10, 100} {
		if got := len(Generate(n, 1)); got != n {
			t.Errorf("Generate(%d) returned %d", n, got)
		}
	}
}

func TestSeedDiversity(t *testing.T) {
	corpus := Generate(200, 42)
	kinds := map[cast.NodeKind]bool{}
	for _, src := range corpus {
		tu, err := cast.Parse(src)
		if err != nil {
			continue
		}
		cast.Walk(tu, func(n cast.Node) bool {
			kinds[n.Kind()] = true
			return true
		})
	}
	required := []cast.NodeKind{
		cast.KindForStmt, cast.KindWhileStmt, cast.KindDoStmt,
		cast.KindSwitchStmt, cast.KindGotoStmt, cast.KindIfStmt,
		cast.KindArraySubscriptExpr, cast.KindMemberExpr, cast.KindCallExpr,
		cast.KindBinaryOperator, cast.KindStringLiteral,
		cast.KindFloatingLiteral, cast.KindRecordDecl,
	}
	for _, k := range required {
		if !kinds[k] {
			t.Errorf("corpus never exercises %s", k)
		}
	}
}

func TestHandWrittenSeedsPresent(t *testing.T) {
	corpus := Generate(len(handWritten), 1)
	for i, hw := range handWritten {
		if corpus[i] != hw {
			t.Errorf("hand-written seed %d not preserved", i)
		}
	}
}
