// Package seeds synthesizes the seed corpus that bootstraps all
// mutation-based fuzzers, standing in for the 1,839 programs the paper
// derives from the GCC and Clang test suites. The generator emits small,
// deterministic, compilable C programs in the style of compiler test
// suites: arithmetic kernels, loops over arrays, switch ladders, struct
// and pointer manipulation, string builtins, and goto webs.
package seeds

import (
	"fmt"
	"math/rand"
	"strings"
)

// handWritten are fixed seeds mirroring well-known test-suite files,
// including the shapes behind the paper's case-study bugs.
var handWritten = []string{
	// In the style of GCC test #20001226-1 (the Ret2V case study).
	`
unsigned foo(int x[64], int y[64]) {
    int i;
    unsigned s = 0;
    for (i = 0; i < 64; i++) {
        if (x[i] > y[i]) goto gt;
        if (x[i] < y[i]) goto lt;
    }
    return 0x01234567;
gt:
    return 0x12345678;
lt:
    return 0xF0123456;
}
int main(void) { int a[64]; int b[64]; a[0] = 1; b[0] = 2; return (int)foo(a, b) & 1; }
`,
	// sprintf/strlen-optimization shape.
	`
static char buffer[32];
int test4(void) { return sprintf(buffer, "%s", "bar"); }
void main_test(void) {
    memset(buffer, 'A', 32);
    if (test4() != 3) abort();
}
int main(void) { main_test(); return 0; }
`,
	// Loop-nest reduction shape (the PR #111820 neighborhood).
	`
int r[6];
void f(int n) {
    while (--n) {
        r[0] += r[5];
        r[1] += r[0]; r[2] += r[1]; r[3] += r[2];
        r[4] += r[3]; r[5] += r[4];
    }
}
int main(void) { f(10); return r[5]; }
`,
	// _Complex double corner.
	`
_Complex double x;
double parts(void) { return (double)x; }
int main(void) { return parts() == 0.0 ? 0 : 1; }
`,
	// Struct passing and compound literals.
	`
struct s2 { int a; int b; };
void foo(struct s2 *ptr) { *ptr = (struct s2){0, 0}; }
int main(void) { struct s2 v; foo(&v); return v.a + v.b; }
`,
}

// Generate returns n deterministic seed programs (the fixed hand-written
// ones first, then synthesized ones from the given base seed).
func Generate(n int, seed int64) []string {
	out := make([]string, 0, n)
	for _, s := range handWritten {
		if len(out) == n {
			return out
		}
		out = append(out, s)
	}
	rng := rand.New(rand.NewSource(seed))
	for len(out) < n {
		out = append(out, synth(rng, len(out)))
	}
	return out
}

// synth builds one synthetic test program.
func synth(rng *rand.Rand, idx int) string {
	g := &gen{rng: rng, idx: idx}
	switch rng.Intn(7) {
	case 0:
		return g.arithKernel()
	case 1:
		return g.arrayLoop()
	case 2:
		return g.switchLadder()
	case 3:
		return g.structGame()
	case 4:
		return g.gotoWeb()
	case 5:
		return g.stringPlay()
	default:
		return g.mixed()
	}
}

type gen struct {
	rng *rand.Rand
	idx int
	buf strings.Builder
}

func (g *gen) p(format string, args ...any) {
	fmt.Fprintf(&g.buf, format, args...)
}

func (g *gen) intOp() string {
	return []string{"+", "-", "*", "|", "&", "^"}[g.rng.Intn(6)]
}

func (g *gen) cmp() string {
	return []string{"<", ">", "<=", ">=", "==", "!="}[g.rng.Intn(6)]
}

func (g *gen) lit() int { return g.rng.Intn(97) + 1 }

func (g *gen) arithKernel() string {
	g.p("int k%d(int a, int b, int c) {\n", g.idx)
	g.p("    int t0 = a %s b;\n", g.intOp())
	nv := g.rng.Intn(4) + 2
	for i := 1; i <= nv; i++ {
		g.p("    int t%d = t%d %s (c %s %d);\n", i, i-1, g.intOp(), g.intOp(), g.lit())
	}
	g.p("    if (t%d %s %d) t%d = t%d %s a;\n", nv, g.cmp(), g.lit(), nv, nv, g.intOp())
	g.p("    return t%d;\n}\n", nv)
	g.p("int main(void) { return k%d(%d, %d, %d) & 0xff; }\n",
		g.idx, g.lit(), g.lit(), g.lit())
	return g.buf.String()
}

func (g *gen) arrayLoop() string {
	n := g.rng.Intn(24) + 8
	g.p("int arr%d[%d];\n", g.idx, n)
	g.p("int fill%d(int start) {\n", g.idx)
	g.p("    int i;\n    int acc = 0;\n")
	g.p("    for (i = 0; i < %d; i++) {\n", n)
	g.p("        arr%d[i] = (i %s %d) %s start;\n", g.idx, g.intOp(), g.lit(), g.intOp())
	g.p("        acc += arr%d[i];\n    }\n", g.idx)
	if g.rng.Intn(2) == 0 {
		g.p("    while (acc > %d) { acc -= arr%d[acc %% %d]; }\n", g.lit()*10, g.idx, n)
	}
	g.p("    return acc;\n}\n")
	g.p("int main(void) { return fill%d(%d) & 0x7f; }\n", g.idx, g.lit())
	return g.buf.String()
}

func (g *gen) switchLadder() string {
	arms := g.rng.Intn(7) + 3
	g.p("int classify%d(int v) {\n    int out = 0;\n    switch (v %% %d) {\n",
		g.idx, arms+1)
	for i := 0; i < arms; i++ {
		g.p("    case %d: out = v %s %d; break;\n", i, g.intOp(), g.lit())
	}
	g.p("    default: out = -v; break;\n    }\n    return out;\n}\n")
	g.p("int main(void) {\n    int i; int s = 0;\n")
	g.p("    for (i = 0; i < %d; i++) s += classify%d(i);\n", arms*3, g.idx)
	g.p("    return s & 0xff;\n}\n")
	return g.buf.String()
}

func (g *gen) structGame() string {
	g.p("struct node%d { int val; int weight; };\n", g.idx)
	g.p("struct node%d pool%d[8];\n", g.idx, g.idx)
	g.p("int tally%d(int n) {\n", g.idx)
	g.p("    int i; int sum = 0;\n")
	g.p("    for (i = 0; i < 8; i++) {\n")
	g.p("        pool%d[i].val = i %s n;\n", g.idx, g.intOp())
	g.p("        pool%d[i].weight = pool%d[i].val %s %d;\n", g.idx, g.idx, g.intOp(), g.lit())
	g.p("        sum += pool%d[i].weight;\n    }\n", g.idx)
	g.p("    return sum;\n}\n")
	g.p("int main(void) { return tally%d(%d) & 0xff; }\n", g.idx, g.lit())
	return g.buf.String()
}

func (g *gen) gotoWeb() string {
	g.p("int walk%d(int n) {\n    int steps = 0;\n", g.idx)
	g.p("start:\n    if (n <= 0) goto done;\n")
	g.p("    if (n %% 2) { n = n * 3 + 1; steps++; goto check; }\n")
	g.p("    n = n / 2; steps++;\n")
	g.p("check:\n    if (steps > %d) goto done;\n    goto start;\n", g.lit()+20)
	g.p("done:\n    return steps;\n}\n")
	g.p("int main(void) { return walk%d(%d); }\n", g.idx, g.lit())
	return g.buf.String()
}

func (g *gen) stringPlay() string {
	msg := []string{"hello", "compiler", "fuzz", "abcdef", "xyz"}[g.rng.Intn(5)]
	g.p("static char buf%d[64];\n", g.idx)
	g.p("int build%d(void) {\n", g.idx)
	g.p("    int n = sprintf(buf%d, \"%%s-%%d\", \"%s\", %d);\n", g.idx, msg, g.lit())
	g.p("    if ((unsigned long)n != strlen(buf%d)) abort();\n", g.idx)
	g.p("    return n;\n}\n")
	g.p("int main(void) { return build%d(); }\n", g.idx)
	return g.buf.String()
}

func (g *gen) mixed() string {
	g.p("int gshared%d = %d;\n", g.idx, g.lit())
	g.p("int helper%d(int a, int b) { return a %s b; }\n", g.idx, g.intOp())
	g.p("double scale%d(double d, int k) {\n", g.idx)
	g.p("    double out = d;\n    int i;\n")
	g.p("    for (i = 0; i < k; i++) { out = out * 1.5 - (double)i; }\n")
	g.p("    return out;\n}\n")
	g.p("int main(void) {\n")
	g.p("    int x = helper%d(gshared%d, %d);\n", g.idx, g.idx, g.lit())
	g.p("    double d = scale%d((double)x, %d);\n", g.idx, g.rng.Intn(6)+2)
	g.p("    if (d > 100.0) x = x %s %d; else x = -x;\n", g.intOp(), g.lit())
	g.p("    do { x = x / 2; } while (x > %d);\n", g.lit())
	g.p("    return x & 0xff;\n}\n")
	return g.buf.String()
}
