package muast

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/icsnju/metamut-go/internal/cast"
)

const prog = `
int gv = 3;
int add3(int a, int b, int c) { return a + b + c; }
int twice(int x) { return x * 2; }
int main(void) {
    int r = add3(1, 2, 3);
    r += twice(r);
    r = add3(r, gv, 0);
    return r;
}
`

func newMgr(t *testing.T, src string) *Manager {
	t.Helper()
	m, err := NewManager(src, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func TestNewManagerRejectsInvalid(t *testing.T) {
	if _, err := NewManager("int f( {", rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid program accepted")
	}
	if _, err := NewManager("int f(void) { return nosuch; }",
		rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("semantically invalid program accepted")
	}
}

func TestQueryAPIs(t *testing.T) {
	m := newMgr(t, prog)
	if got := len(m.Functions()); got != 3 {
		t.Errorf("Functions = %d, want 3", got)
	}
	if got := len(m.GlobalVars()); got != 1 {
		t.Errorf("GlobalVars = %d, want 1", got)
	}
	if got := len(m.LocalVars(nil)); got != 1 {
		t.Errorf("LocalVars = %d, want 1", got)
	}
	calls := m.Collect(cast.KindCallExpr)
	if len(calls) != 3 {
		t.Errorf("CallExprs = %d, want 3", len(calls))
	}
	var add3 *cast.FunctionDecl
	for _, fn := range m.Functions() {
		if fn.Name == "add3" {
			add3 = fn
		}
	}
	if got := len(m.CallsTo(add3)); got != 2 {
		t.Errorf("CallsTo(add3) = %d, want 2", got)
	}
	if got := len(m.ReturnsOf(add3)); got != 1 {
		t.Errorf("ReturnsOf(add3) = %d, want 1", got)
	}
}

func TestGetSourceText(t *testing.T) {
	m := newMgr(t, prog)
	for _, fn := range m.Functions() {
		text := m.GetSourceText(fn)
		if !strings.Contains(text, fn.Name) {
			t.Errorf("source text of %s does not contain its name: %q",
				fn.Name, text)
		}
	}
}

func TestRemoveParmFromFuncDecl(t *testing.T) {
	cases := []struct {
		name string
		src  string
		parm int
		want string
	}{
		{"middle", "int f(int a, int b, int c) { return a + c; }", 1,
			"int f(int a, int c)"},
		{"last", "int f(int a, int b) { return a; }", 1, "int f(int a)"},
		{"first", "int f(int a, int b) { return b; }", 0, "int f(int b)"},
		{"only", "int f(int a) { return 0; }", 0, "int f(void)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newMgr(t, tc.src)
			fn := m.Functions()[0]
			if !m.RemoveParmFromFuncDecl(fn, fn.Params[tc.parm]) {
				t.Fatal("removal failed")
			}
			out := m.Apply()
			if !strings.Contains(out, tc.want) {
				t.Fatalf("got %q, want substring %q", out, tc.want)
			}
			if _, err := cast.ParseAndCheck(out); err != nil {
				t.Fatalf("mutant does not compile: %v\n%s", err, out)
			}
		})
	}
}

func TestRemoveArgFromExpr(t *testing.T) {
	src := "int g(int a, int b, int c); int main(void) { return g(1, 2, 3); }"
	for idx, want := range map[int]string{
		0: "g(2, 3)", 1: "g(1, 3)", 2: "g(1, 2)",
	} {
		m := newMgr(t, src)
		call := m.Collect(cast.KindCallExpr)[0].(*cast.CallExpr)
		if !m.RemoveArgFromExpr(call, idx) {
			t.Fatalf("remove arg %d failed", idx)
		}
		if out := m.Apply(); !strings.Contains(out, want) {
			t.Errorf("remove arg %d: got %q, want %q", idx, out, want)
		}
	}
	m := newMgr(t, src)
	call := m.Collect(cast.KindCallExpr)[0].(*cast.CallExpr)
	if m.RemoveArgFromExpr(call, 5) {
		t.Error("out-of-range arg removal succeeded")
	}
}

func TestGenerateUniqueName(t *testing.T) {
	m := newMgr(t, prog)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		n := m.GenerateUniqueName("tmp")
		if seen[n] {
			t.Fatalf("duplicate generated name %q", n)
		}
		if strings.Contains(prog, n) {
			t.Fatalf("generated name %q collides with program identifier", n)
		}
		seen[n] = true
	}
}

func TestIsSideEffectFree(t *testing.T) {
	m := newMgr(t, `
int g(void);
int main(void) {
    int a = 1;
    int pure = a + 2 * 3;
    int impure1 = g();
    int impure2 = a++;
    int impure3 = (a = 5);
    return pure + impure1 + impure2 + impure3;
}
`)
	vars := m.LocalVars(nil)
	got := map[string]bool{}
	for _, vd := range vars {
		if vd.Init != nil {
			got[vd.Name] = m.IsSideEffectFree(vd.Init)
		}
	}
	want := map[string]bool{
		"a": true, "pure": true,
		"impure1": false, "impure2": false, "impure3": false,
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("IsSideEffectFree(init of %s) = %v, want %v",
				name, got[name], w)
		}
	}
}

func TestUsesOf(t *testing.T) {
	m := newMgr(t, prog)
	gv := m.GlobalVars()[0]
	uses := m.UsesOf(gv)
	if len(uses) != 1 {
		t.Fatalf("uses of gv = %d, want 1", len(uses))
	}
}

func TestRegistryRejectsBadEntries(t *testing.T) {
	for _, info := range []Info{
		{},
		{Name: "X"},
		{Name: "X", Description: "d"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", info)
				}
			}()
			Register(info)
		}()
	}
}

func TestIndentOf(t *testing.T) {
	m := newMgr(t, "int main(void) {\n    int x = 1;\n\treturn x;\n}")
	decl := m.LocalVars(nil)[0]
	if got := m.IndentOf(decl.Range().Begin); got != "    " {
		t.Errorf("IndentOf = %q, want 4 spaces", got)
	}
}

// TestQuickApplyAlwaysParseable: replacing any expression with a same-type
// default through the Manager keeps the program parseable.
func TestQuickApplyAlwaysParseable(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewManager(prog, rng)
		if err != nil {
			return false
		}
		exprs := m.Exprs(nil, func(e cast.Expr) bool {
			return e.Type().IsInteger()
		})
		if len(exprs) == 0 {
			return true
		}
		e := exprs[rng.Intn(len(exprs))]
		// Only replace expressions not used as lvalues.
		m.ReplaceNode(e, "(0)")
		out := m.Apply()
		_, perr := cast.Parse(out)
		if perr != nil {
			t.Logf("unparseable after replace: %v\n%s", perr, out)
		}
		return perr == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestResetEquivalentToFresh pins the contract Reset's doc comment
// states: a reset manager must be indistinguishable from a freshly
// constructed one over the same program. The session below touches
// every piece of state Reset must restore — edits (RW), fuel, the name
// sequence, and the lazily-built identifier set — and runs it through
// one reused manager and a per-round fresh manager driven by RNGs in
// lockstep. Any drift (a surviving edit, a depleted budget, a name
// sequence that kept counting) shows up as diverging output.
func TestResetEquivalentToFresh(t *testing.T) {
	session := func(m *Manager) (out string, names []string, fuel int) {
		rng := m.Rand()
		exprs := m.Exprs(nil, func(e cast.Expr) bool { return e.Type().IsInteger() })
		if len(exprs) == 0 {
			t.Fatal("no integer expressions in test program")
		}
		m.ReplaceNode(exprs[rng.Intn(len(exprs))], "(7)")
		for i := 0; i < 3; i++ {
			names = append(names, m.GenerateUniqueName("tmp"))
		}
		fns := m.Functions()
		m.InsertBefore(fns[rng.Intn(len(fns))], "/* marker */\n")
		return m.Apply(), names, m.Fuel()
	}

	rngReused := rand.New(rand.NewSource(9))
	rngFresh := rand.New(rand.NewSource(9))
	reused, err := NewManager(prog, rngReused)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		fresh, err := NewManager(prog, rngFresh)
		if err != nil {
			t.Fatal(err)
		}
		wantOut, wantNames, wantFuel := session(fresh)
		if round > 0 {
			reused.Reset()
		}
		gotOut, gotNames, gotFuel := session(reused)
		if gotOut != wantOut {
			t.Fatalf("round %d: reset manager rewrote differently\n got %q\nwant %q",
				round, gotOut, wantOut)
		}
		if !reflect.DeepEqual(gotNames, wantNames) {
			t.Fatalf("round %d: generated names diverged: %v vs %v", round, gotNames, wantNames)
		}
		if gotFuel != wantFuel {
			t.Fatalf("round %d: fuel diverged: %d vs %d", round, gotFuel, wantFuel)
		}
	}
}
