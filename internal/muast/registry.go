package muast

import (
	"fmt"
	"sort"
	"sync"
)

// Category classifies mutators by their target program structure,
// following Section 4.1 of the paper: Variable (16), Expression (50),
// Statement (27), Function (19) and Type (6).
type Category int

// Mutator categories.
const (
	CatVariable Category = iota
	CatExpression
	CatStatement
	CatFunction
	CatType
)

var categoryNames = [...]string{
	CatVariable: "Variable", CatExpression: "Expression",
	CatStatement: "Statement", CatFunction: "Function", CatType: "Type",
}

// String returns the category name.
func (c Category) String() string { return categoryNames[c] }

// Set identifies which generation campaign produced a mutator.
type Set int

// Mutator sets: the 68 supervised mutators (M_s) came from two weeks of
// interactive prompt refinement; the 50 unsupervised ones (M_u) from 100
// fully-automatic MetaMut invocations.
const (
	Supervised Set = iota
	Unsupervised
)

// String returns "supervised" or "unsupervised".
func (s Set) String() string {
	if s == Supervised {
		return "supervised"
	}
	return "unsupervised"
}

// MutateFunc is a mutator implementation: collect mutation instances,
// select one, check validity, rewrite. It returns true when the program
// changed (template Step 6).
type MutateFunc func(m *Manager) bool

// Info is a mutator's registry entry.
type Info struct {
	Name        string
	Description string
	Category    Category
	Set         Set
	// Creative marks mutators that do not strictly follow the
	// "[Action] on [Program Structure]" template (33 of 118).
	Creative bool
	Fn       MutateFunc
}

// Mutator is a registered mutator bound to its metadata; applying it to a
// program is the fundamental small-step of the fuzzer's search space.
type Mutator struct{ Info }

// Apply runs the mutator over src and returns the mutant. ok is false
// when the mutator found no applicable mutation instance, or src failed
// to parse. A returned mutant is NOT guaranteed to be compilable — that
// is the fuzzer's and the validation loop's job to determine.
func (mu *Mutator) Apply(src string, mgr *Manager) (mutant string, ok bool) {
	if !mu.Fn(mgr) || !mgr.Changed() {
		return "", false
	}
	return mgr.Apply(), true
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Mutator{}
)

// Register adds a mutator to the global registry. It panics on duplicate
// names or missing fields — registration happens at init time and a bad
// entry is a programming error.
func Register(info Info) {
	if info.Name == "" || info.Description == "" || info.Fn == nil {
		panic(fmt.Sprintf("muast: incomplete mutator registration %+v", info))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic("muast: duplicate mutator " + info.Name)
	}
	registry[info.Name] = &Mutator{Info: info}
}

// Lookup returns the named mutator.
func Lookup(name string) (*Mutator, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	mu, ok := registry[name]
	return mu, ok
}

// All returns every registered mutator, sorted by name.
func All() []*Mutator {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Mutator, 0, len(registry))
	for _, mu := range registry {
		out = append(out, mu)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BySet returns the mutators of one generation campaign, sorted by name.
func BySet(s Set) []*Mutator {
	var out []*Mutator
	for _, mu := range All() {
		if mu.Set == s {
			out = append(out, mu)
		}
	}
	return out
}

// ByCategory returns the mutators of one category, sorted by name.
func ByCategory(c Category) []*Mutator {
	var out []*Mutator
	for _, mu := range All() {
		if mu.Category == c {
			out = append(out, mu)
		}
	}
	return out
}
