// Package muast implements the paper's μAST API (Figure 6): a simplified
// mutation-oriented facade over the C AST in internal/cast. It provides
// the query, rewriting, semantic-checking and helper primitives that
// MetaMut-generated mutators are written against, plus the mutator
// registry that both the supervised and unsupervised mutator sets
// register into.
package muast

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"

	"github.com/icsnju/metamut-go/internal/cast"
)

// DefaultFuel is the μAST work budget for one mutator application:
// every query charges the nodes it returns and every rewrite op charges
// one unit. Well-behaved mutators use a few hundred units on realistic
// programs; a mutator that burns the whole budget is looping.
const DefaultFuel = 1 << 20

// FuelExhausted is the panic value the Manager's fuel watchdog raises
// when a mutator exceeds its work budget. Supervised callers (the
// fuzzers' safeApply) recover it and convert the offense into a
// quarantine strike; it satisfies error for that reporting.
type FuelExhausted struct{ Budget int }

// Error describes the exhausted budget.
func (e FuelExhausted) Error() string {
	return fmt.Sprintf("muast: mutator exhausted its fuel budget (%d units)", e.Budget)
}

// Manager is the mutation context handed to every mutator invocation: one
// parsed, semantically-checked program, a source rewriter, and a seeded
// random stream. It corresponds to the Mutator/Manager pair of the
// paper's C++ template (Figure 2).
type Manager struct {
	TU *cast.TranslationUnit
	RW *cast.Rewriter

	rng     *rand.Rand
	parents cast.ParentMap
	nameSeq int
	idents  map[string]bool
	fuel    int
	budget  int
}

// NewManager parses and checks src and returns a mutation context using
// the given random stream. It fails if src is not a valid program —
// mutators are only ever applied to compilable inputs. Parses are
// memoized (cast.ParseAndCheckCached): μCFuzz re-parses the same pool
// program up to MaxMutatorTries times per tick, so the managers of one
// tick share a single immutable translation unit.
func NewManager(src string, rng *rand.Rand) (*Manager, error) {
	tu, err := cast.ParseAndCheckCached(src)
	if err != nil {
		return nil, err
	}
	return NewManagerFromTU(tu, rng), nil
}

// identRe matches C identifiers; compiled once — NewManagerFromTU is
// called for every mutator try, which made per-call compilation a
// measurable hot spot.
var identRe = regexp.MustCompile(`[A-Za-z_][A-Za-z0-9_]*`)

// NewManagerFromTU wraps an already-parsed translation unit. The
// manager only reads the TU (all rewriting is text-level through RW),
// so sharing one TU across managers — and across streams, via the parse
// cache — is safe.
func NewManagerFromTU(tu *cast.TranslationUnit, rng *rand.Rand) *Manager {
	return &Manager{
		TU:     tu,
		RW:     cast.NewRewriter(tu.Source),
		rng:    rng,
		fuel:   DefaultFuel,
		budget: DefaultFuel,
	}
}

// Reset discards recorded edits and restores the fuel budget, name
// sequence and identifier set, making the manager equivalent to a
// freshly constructed one over the same translation unit. Batched
// fuzzers reuse one manager across the mutants of a step instead of
// allocating a rewriter per try. The parent map is a pure cache of the
// immutable TU and survives; the idents map does NOT — generated names
// are recorded into it, so keeping it would shift GenerateUniqueName
// results away from fresh-manager behavior.
func (m *Manager) Reset() {
	m.RW.Reset()
	m.fuel = DefaultFuel
	m.budget = DefaultFuel
	m.nameSeq = 0
	m.idents = nil
}

// identsMap lazily scans the source for identifiers. Most mutators
// never call GenerateUniqueName, so the scan (regexp over the whole
// program plus a map fill) is deferred until first use.
func (m *Manager) identsMap() map[string]bool {
	if m.idents == nil {
		m.idents = map[string]bool{}
		for _, id := range identRe.FindAllString(m.TU.Source, -1) {
			m.idents[id] = true
		}
	}
	return m.idents
}

// Rand exposes the manager's random stream.
func (m *Manager) Rand() *rand.Rand { return m.rng }

// SetFuel replaces the remaining work budget — the chaos harness uses a
// tiny budget to exercise the watchdog without burning DefaultFuel.
func (m *Manager) SetFuel(n int) { m.fuel, m.budget = n, n }

// Fuel returns the remaining work budget.
func (m *Manager) Fuel() int { return m.fuel }

// charge deducts n units of μAST work; crossing zero raises the
// FuelExhausted watchdog panic, which supervised callers recover.
func (m *Manager) charge(n int) {
	m.fuel -= n
	if m.fuel < 0 {
		panic(FuelExhausted{Budget: m.budget})
	}
}

// Apply materializes all recorded edits, returning the mutated source.
func (m *Manager) Apply() string { return m.RW.Rewritten() }

// Changed reports whether any rewrite has been recorded.
func (m *Manager) Changed() bool { return m.RW.HasEdits() }

// ---------------------------------------------------------------------
// Query APIs
// ---------------------------------------------------------------------

// GetSourceText extracts the original source code of a tree node, for
// replication at new locations.
func (m *Manager) GetSourceText(n cast.Node) string {
	return m.RW.GetSourceText(n.Range())
}

// FindStrLocFrom locates the position of a string starting from a
// specified location; -1 when absent.
func (m *Manager) FindStrLocFrom(loc int, target string) int {
	return m.RW.FindStrLocFrom(loc, target)
}

// FindBracesRange identifies the range of the next pair of enclosed
// braces at or after from.
func (m *Manager) FindBracesRange(from int) (cast.SourceRange, bool) {
	return m.RW.FindBracesRange(from)
}

// RandElement chooses a uniformly random element of elements; it panics
// on an empty slice (mutators must check emptiness and bail out first).
func RandElement[T any](m *Manager, elements []T) T {
	return elements[m.rng.Intn(len(elements))]
}

// RandBool returns true with probability p.
func (m *Manager) RandBool(p float64) bool { return m.rng.Float64() < p }

// Collect returns every node of the given kind, in source order.
func (m *Manager) Collect(k cast.NodeKind) []cast.Node {
	out := cast.CollectKind(m.TU, k)
	m.charge(1 + len(out))
	return out
}

// Functions returns all function definitions (not prototypes).
func (m *Manager) Functions() []*cast.FunctionDecl {
	var out []*cast.FunctionDecl
	for _, d := range m.TU.Decls {
		if fd, ok := d.(*cast.FunctionDecl); ok && fd.IsDefinition() {
			out = append(out, fd)
		}
	}
	m.charge(1 + len(out))
	return out
}

// GlobalVars returns all file-scope variable declarations.
func (m *Manager) GlobalVars() []*cast.VarDecl {
	var out []*cast.VarDecl
	for _, d := range m.TU.Decls {
		if vd, ok := d.(*cast.VarDecl); ok {
			out = append(out, vd)
		}
	}
	m.charge(1 + len(out))
	return out
}

// LocalVars returns all block-scope variable declarations under fn (or
// everywhere when fn is nil).
func (m *Manager) LocalVars(fn *cast.FunctionDecl) []*cast.VarDecl {
	var root cast.Node = m.TU
	if fn != nil {
		root = fn
	}
	var out []*cast.VarDecl
	cast.Walk(root, func(n cast.Node) bool {
		if vd, ok := n.(*cast.VarDecl); ok && !vd.IsGlobal {
			out = append(out, vd)
		}
		return true
	})
	m.charge(1 + len(out))
	return out
}

// Exprs returns every expression node under root (the whole unit when
// root is nil) that satisfies pred; a nil pred selects all.
func (m *Manager) Exprs(root cast.Node, pred func(cast.Expr) bool) []cast.Expr {
	if root == nil {
		root = m.TU
	}
	var out []cast.Expr
	cast.Walk(root, func(n cast.Node) bool {
		if e, ok := n.(cast.Expr); ok && (pred == nil || pred(e)) {
			out = append(out, e)
		}
		return true
	})
	m.charge(1 + len(out))
	return out
}

// Stmts returns every statement node under root satisfying pred.
func (m *Manager) Stmts(root cast.Node, pred func(cast.Stmt) bool) []cast.Stmt {
	if root == nil {
		root = m.TU
	}
	var out []cast.Stmt
	cast.Walk(root, func(n cast.Node) bool {
		if s, ok := n.(cast.Stmt); ok && (pred == nil || pred(s)) {
			out = append(out, s)
		}
		return true
	})
	m.charge(1 + len(out))
	return out
}

// Parents lazily computes and caches the parent map.
func (m *Manager) Parents() cast.ParentMap {
	if m.parents == nil {
		m.parents = cast.BuildParentMap(m.TU)
	}
	return m.parents
}

// ReturnsOf returns all return statements lexically inside fn.
func (m *Manager) ReturnsOf(fn *cast.FunctionDecl) []*cast.ReturnStmt {
	var out []*cast.ReturnStmt
	cast.Walk(fn, func(n cast.Node) bool {
		if rs, ok := n.(*cast.ReturnStmt); ok {
			out = append(out, rs)
		}
		return true
	})
	m.charge(1 + len(out))
	return out
}

// CallsTo returns all calls that resolve to fn anywhere in the unit.
func (m *Manager) CallsTo(fn *cast.FunctionDecl) []*cast.CallExpr {
	var out []*cast.CallExpr
	cast.Walk(m.TU, func(n cast.Node) bool {
		if ce, ok := n.(*cast.CallExpr); ok {
			if ce.Callee != nil && ce.Callee.Name == fn.Name {
				out = append(out, ce)
			}
		}
		return true
	})
	m.charge(1 + len(out))
	return out
}

// UsesOf returns all references to the given declaration.
func (m *Manager) UsesOf(d cast.Decl) []*cast.DeclRefExpr {
	var out []*cast.DeclRefExpr
	cast.Walk(m.TU, func(n cast.Node) bool {
		if dr, ok := n.(*cast.DeclRefExpr); ok && dr.Ref == d {
			out = append(out, dr)
		}
		return true
	})
	m.charge(1 + len(out))
	return out
}

// ---------------------------------------------------------------------
// Rewriting APIs
// ---------------------------------------------------------------------

// ReplaceNode replaces a node's source extent with text.
func (m *Manager) ReplaceNode(n cast.Node, text string) bool {
	m.charge(1)
	return m.RW.ReplaceNode(n, text)
}

// ReplaceRange replaces a source range with text.
func (m *Manager) ReplaceRange(r cast.SourceRange, text string) bool {
	m.charge(1)
	return m.RW.ReplaceText(r, text)
}

// RemoveNode deletes a node's source extent.
func (m *Manager) RemoveNode(n cast.Node) bool {
	m.charge(1)
	return m.RW.RemoveNode(n)
}

// InsertBefore inserts text before the node.
func (m *Manager) InsertBefore(n cast.Node, text string) bool {
	m.charge(1)
	return m.RW.InsertTextBefore(n.Range().Begin, text)
}

// InsertAfter inserts text after the node.
func (m *Manager) InsertAfter(n cast.Node, text string) bool {
	m.charge(1)
	return m.RW.InsertTextAfter(n.Range(), text)
}

// RemoveParmFromFuncDecl removes a parameter from a function declaration,
// including the separating comma — simply removing the declaration node
// is insufficient to fully eliminate the parameter (Figure 6).
func (m *Manager) RemoveParmFromFuncDecl(fn *cast.FunctionDecl, pv *cast.ParmVarDecl) bool {
	r := pv.Range()
	src := m.RW.Source()
	idx := -1
	for i, p := range fn.Params {
		if p == pv {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	switch {
	case len(fn.Params) == 1:
		// Sole parameter: leave "(void)" to keep a valid prototype.
		return m.RW.ReplaceText(r, "void")
	case idx < len(fn.Params)-1:
		// Remove through the trailing comma.
		end := r.End
		for end < len(src) && (src[end] == ' ' || src[end] == '\t' || src[end] == '\n') {
			end++
		}
		if end < len(src) && src[end] == ',' {
			end++
			for end < len(src) && src[end] == ' ' {
				end++
			}
		}
		return m.RW.ReplaceText(cast.SourceRange{Begin: r.Begin, End: end}, "")
	default:
		// Last parameter: remove the preceding comma too.
		begin := r.Begin
		for begin > 0 && (src[begin-1] == ' ' || src[begin-1] == '\t' || src[begin-1] == '\n') {
			begin--
		}
		if begin > 0 && src[begin-1] == ',' {
			begin--
		}
		return m.RW.ReplaceText(cast.SourceRange{Begin: begin, End: r.End}, "")
	}
}

// RemoveArgFromExpr removes the index-th argument from a function
// invocation, adjusting the separating comma.
func (m *Manager) RemoveArgFromExpr(call *cast.CallExpr, index int) bool {
	if index < 0 || index >= len(call.Args) {
		return false
	}
	r := call.Args[index].Range()
	src := m.RW.Source()
	switch {
	case len(call.Args) == 1:
		return m.RW.ReplaceText(r, "")
	case index < len(call.Args)-1:
		end := r.End
		for end < len(src) && (src[end] == ' ' || src[end] == '\t' || src[end] == '\n') {
			end++
		}
		if end < len(src) && src[end] == ',' {
			end++
			for end < len(src) && src[end] == ' ' {
				end++
			}
		}
		return m.RW.ReplaceText(cast.SourceRange{Begin: r.Begin, End: end}, "")
	default:
		begin := r.Begin
		for begin > 0 && (src[begin-1] == ' ' || src[begin-1] == '\t' || src[begin-1] == '\n') {
			begin--
		}
		if begin > 0 && src[begin-1] == ',' {
			begin--
		}
		return m.RW.ReplaceText(cast.SourceRange{Begin: begin, End: r.End}, "")
	}
}

// ---------------------------------------------------------------------
// Semantic checking APIs
// ---------------------------------------------------------------------

// CheckBinop checks whether operator op can be applied to lhs and rhs.
func (m *Manager) CheckBinop(op cast.BinOp, lhs, rhs cast.Expr) bool {
	return cast.CheckBinopTypes(op, lhs.Type(), rhs.Type())
}

// CheckBinopTypes checks operator applicability on raw types.
func (m *Manager) CheckBinopTypes(op cast.BinOp, lt, rt cast.QualType) bool {
	return cast.CheckBinopTypes(op, lt, rt)
}

// CheckAssignment checks whether an expression of type rhsTy can replace
// an expression of type lhsTy in assignment position.
func (m *Manager) CheckAssignment(lhsTy, rhsTy cast.QualType) bool {
	return cast.CheckAssignmentTypes(lhsTy, rhsTy)
}

// IsSideEffectFree conservatively reports whether evaluating e twice is
// safe (no assignments, calls, or ++/--).
func (m *Manager) IsSideEffectFree(e cast.Expr) bool {
	safe := true
	cast.Walk(e, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.CallExpr:
			safe = false
		case *cast.BinaryOperator:
			if x.Op.IsAssignment() {
				safe = false
			}
		case *cast.UnaryOperator:
			switch x.Op {
			case cast.UnPreInc, cast.UnPreDec, cast.UnPostInc, cast.UnPostDec:
				safe = false
			}
		}
		return safe
	})
	return safe
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

// GenerateUniqueName generates an identifier based on baseName that does
// not collide with any identifier in the program or a previously
// generated name.
func (m *Manager) GenerateUniqueName(baseName string) string {
	idents := m.identsMap()
	for {
		m.nameSeq++
		cand := fmt.Sprintf("%s_%d", baseName, m.nameSeq)
		if !idents[cand] {
			idents[cand] = true
			return cand
		}
	}
}

// FormatAsDecl formats a given type and identifier as a variable
// declaration, handling C's inside-out declarator syntax.
func (m *Manager) FormatAsDecl(ty cast.QualType, name string) string {
	return cast.FormatAsDecl(ty, name)
}

// DefaultValueExpr spells a default value of the given type.
func (m *Manager) DefaultValueExpr(ty cast.QualType) string {
	return cast.DefaultValueExpr(ty)
}

// IndentOf returns the leading whitespace of the line containing off,
// used when inserting statements.
func (m *Manager) IndentOf(off int) string {
	src := m.RW.Source()
	lineStart := strings.LastIndexByte(src[:min(off, len(src))], '\n') + 1
	i := lineStart
	for i < len(src) && (src[i] == ' ' || src[i] == '\t') {
		i++
	}
	return src[lineStart:i]
}
