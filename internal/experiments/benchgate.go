package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// benchGateTolerance is how much throughput regression the gate
// accepts before failing: fresh edges/sec must be at least this
// fraction of the committed number. Wall-clock benches on shared
// hardware jitter, so the gate is deliberately loose — it catches
// "someone re-introduced a per-mutant parse", not scheduler noise.
const benchGateTolerance = 0.90

// GateFailure is one bench-gate violation.
type GateFailure struct {
	Check string `json:"check"`
	Want  string `json:"want"`
	Got   string `json:"got"`
}

// RunBenchGate re-runs the committed benches and compares them against
// the BENCH_*.json files in the repo root (or wherever dir points):
//
//   - schedbench edges/sec per variant must not regress more than 10%
//     vs BENCH_sched.json, and ticks/edges/crashes must match exactly
//     (the determinism gate rides along for free);
//   - hotloopbench edges/sec likewise vs BENCH_hotloop.json, and the
//     batch=1 and batch=8 variants must agree with each other.
//
// The allocation budgets are enforced separately and unconditionally by
// TestHotLoopAllocBudget (testing.AllocsPerRun needs the testing
// harness). Returns the failures; empty means the gate passes.
func RunBenchGate(cfg Config, dir string) []GateFailure {
	var fails []GateFailure

	var committed SchedBenchResult
	if ok := loadJSON(dir+"/BENCH_sched.json", &committed, &fails); ok {
		fresh := RunSchedBench(cfg)
		for i, want := range committed.Variants {
			if i >= len(fresh.Variants) {
				fails = append(fails, GateFailure{Check: "sched:" + want.Name,
					Want: "variant present", Got: "missing"})
				continue
			}
			got := fresh.Variants[i]
			if got.Ticks != want.Ticks || got.Edges != want.Edges || got.Crashes != want.Crashes {
				fails = append(fails, GateFailure{
					Check: "sched-determinism:" + want.Name,
					Want:  fmt.Sprintf("ticks=%d edges=%d crashes=%d", want.Ticks, want.Edges, want.Crashes),
					Got:   fmt.Sprintf("ticks=%d edges=%d crashes=%d", got.Ticks, got.Edges, got.Crashes),
				})
			}
			if want.EdgesPerSec > 0 && got.EdgesPerSec < benchGateTolerance*want.EdgesPerSec {
				fails = append(fails, GateFailure{
					Check: "sched-throughput:" + want.Name,
					Want:  fmt.Sprintf(">= %.0f edges/s (90%% of committed %.0f)", benchGateTolerance*want.EdgesPerSec, want.EdgesPerSec),
					Got:   fmt.Sprintf("%.0f edges/s", got.EdgesPerSec),
				})
			}
		}
	}

	var hot HotLoopBenchResult
	if ok := loadJSON(dir+"/BENCH_hotloop.json", &hot, &fails); ok {
		fresh := RunHotLoopBench(cfg)
		for i, want := range hot.Variants {
			if i >= len(fresh.Variants) {
				fails = append(fails, GateFailure{Check: "hotloop:" + want.Name,
					Want: "variant present", Got: "missing"})
				continue
			}
			got := fresh.Variants[i]
			if got.Ticks != want.Ticks || got.Edges != want.Edges || got.Crashes != want.Crashes {
				fails = append(fails, GateFailure{
					Check: "hotloop-determinism:" + want.Name,
					Want:  fmt.Sprintf("ticks=%d edges=%d crashes=%d", want.Ticks, want.Edges, want.Crashes),
					Got:   fmt.Sprintf("ticks=%d edges=%d crashes=%d", got.Ticks, got.Edges, got.Crashes),
				})
			}
			if want.EdgesPerSec > 0 && got.EdgesPerSec < benchGateTolerance*want.EdgesPerSec {
				fails = append(fails, GateFailure{
					Check: "hotloop-throughput:" + want.Name,
					Want:  fmt.Sprintf(">= %.0f edges/s (90%% of committed %.0f)", benchGateTolerance*want.EdgesPerSec, want.EdgesPerSec),
					Got:   fmt.Sprintf("%.0f edges/s", got.EdgesPerSec),
				})
			}
		}
		if len(fresh.Variants) == 2 {
			a, b := fresh.Variants[0], fresh.Variants[1]
			if a.Ticks != b.Ticks || a.Edges != b.Edges || a.Crashes != b.Crashes {
				fails = append(fails, GateFailure{
					Check: "hotloop-batch-identity",
					Want:  "batch=1 and batch=8 byte-identical",
					Got: fmt.Sprintf("batch=1 ticks=%d edges=%d; batch=8 ticks=%d edges=%d",
						a.Ticks, a.Edges, b.Ticks, b.Edges),
				})
			}
		}
	}
	return fails
}

func loadJSON(path string, into any, fails *[]GateFailure) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		*fails = append(*fails, GateFailure{Check: "load:" + path,
			Want: "committed bench file", Got: err.Error()})
		return false
	}
	if err := json.Unmarshal(data, into); err != nil {
		*fails = append(*fails, GateFailure{Check: "parse:" + path,
			Want: "valid JSON", Got: err.Error()})
		return false
	}
	return true
}
