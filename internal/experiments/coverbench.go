package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/icsnju/metamut-go/internal/compilersim/cover"
)

// CoverBenchResult is the BENCH_cover.json payload: one before/after
// number for the shared-coverage locking strategy — the flat-bitset Map
// behind a single global mutex versus the lock-striped cover.Sharded.
// The workload is the read-mostly steady state (novelty probes that
// find nothing new); the stripes' advantage is parallel readers, so on
// a single-CPU host (GoMaxProcs 1) the global mutex can come out ahead
// — commit the numbers with the host shape and read them together.
type CoverBenchResult struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	Goroutines int     `json:"goroutines"`
	Maps       int     `json:"maps"`
	OpsPerSide int     `json:"ops_per_side"`
	GlobalNs   float64 `json:"global_lock_ns_per_op"`
	ShardedNs  float64 `json:"sharded_ns_per_op"`
	Speedup    float64 `json:"sharded_speedup"`
}

// lockedBitset is the baseline: the current bitset Map behind one
// mutex (the pre-sharding SharedCoverage design).
type lockedBitset struct {
	mu sync.Mutex
	m  cover.Map
}

func (l *lockedBitset) MergeIfNew(m *cover.Map) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.m.HasNew(m) {
		return false
	}
	l.m.Merge(m)
	return true
}

// coverBenchMaps mirrors the cover package's benchmark workload: heavy
// overlap plus a few private edges per map, so steady-state MergeIfNew
// is a pure novelty probe.
func coverBenchMaps(n int) []*cover.Map {
	rng := rand.New(rand.NewSource(7))
	core := make([]uint32, 400)
	for i := range core {
		core[i] = uint32(rng.Intn(cover.MapSize))
	}
	maps := make([]*cover.Map, n)
	for i := range maps {
		m := cover.NewMap()
		for _, e := range core {
			m.Set(e)
		}
		for j := 0; j < 32; j++ {
			m.Set(uint32(rng.Intn(cover.MapSize)))
		}
		maps[i] = m
	}
	return maps
}

type coverSink interface{ MergeIfNew(*cover.Map) bool }

func coverBenchSide(sink coverSink, maps []*cover.Map, goroutines, opsEach int) float64 {
	for _, m := range maps {
		sink.MergeIfNew(m)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				sink.MergeIfNew(maps[(g+i)%len(maps)])
			}
		}(g)
	}
	wg.Wait()
	return float64(time.Since(start).Nanoseconds()) / float64(goroutines*opsEach)
}

// RunCoverBench measures the shared-coverage merge pair and returns the
// BENCH_cover.json payload.
func RunCoverBench() *CoverBenchResult {
	const (
		nMaps      = 64
		goroutines = 4
		opsEach    = 250000
	)
	maps := coverBenchMaps(nMaps)
	res := &CoverBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Goroutines: goroutines,
		Maps:       nMaps,
		OpsPerSide: goroutines * opsEach,
	}
	res.GlobalNs = coverBenchSide(&lockedBitset{}, maps, goroutines, opsEach)
	res.ShardedNs = coverBenchSide(&cover.Sharded{}, maps, goroutines, opsEach)
	if res.ShardedNs > 0 {
		res.Speedup = res.GlobalNs / res.ShardedNs
	}
	return res
}

// Render prints the pair.
func (r *CoverBenchResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Shared-coverage merge: %d goroutines x %d ops, %d maps, GOMAXPROCS=%d\n",
		r.Goroutines, r.OpsPerSide/r.Goroutines, r.Maps, r.GoMaxProcs)
	fmt.Fprintf(&sb, "  global-lock bitset: %8.1f ns/op\n", r.GlobalNs)
	fmt.Fprintf(&sb, "  sharded stripes:    %8.1f ns/op  (%.2fx)\n", r.ShardedNs, r.Speedup)
	return sb.String()
}

// WriteJSON writes the BENCH_cover.json artifact.
func (r *CoverBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
