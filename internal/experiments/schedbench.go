package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/engine"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/sched"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// schedBenchPool is deliberately tiny: a small corpus makes the fuzzers
// re-derive identical mutants often, which is exactly the duplication
// the mutant cache exists to absorb (a production-sized corpus dilutes
// the effect without changing the mechanism).
const schedBenchPool = 12

// SchedBenchVariant is one cell of the scheduling × caching ablation.
type SchedBenchVariant struct {
	Name     string `json:"name"`
	Sched    string `json:"sched"`
	CacheCap int    `json:"cache_cap"`

	Ticks           int     `json:"ticks"`
	Edges           int     `json:"edges"`
	Crashes         int     `json:"crashes"`
	EdgesPer1kTicks float64 `json:"edges_per_1k_ticks"`
	// Compiles is the number of full pipeline executions: Ticks minus
	// the compilations answered from the mutant cache.
	Compiles       int     `json:"compiles"`
	CacheHits      int64   `json:"cache_hits"`
	ParseCacheHits int64   `json:"parse_cache_hits"`
	Seconds        float64 `json:"seconds"`
	EdgesPerSec    float64 `json:"edges_per_sec"`
}

// SchedBenchResult is the full ablation: the BENCH_sched.json payload.
type SchedBenchResult struct {
	Seed     int64               `json:"seed"`
	Steps    int                 `json:"steps"`
	Streams  int                 `json:"streams"`
	Pool     int                 `json:"pool"`
	Variants []SchedBenchVariant `json:"variants"`
}

// RunSchedBench measures the adaptive scheduler and the mutant cache
// against the uniform/uncached baseline: four macro campaigns on the
// engine, identical seed and budget, varying only the policy and the
// cache. Scheduling changes what gets compiled (edges per tick);
// caching changes how much compiling costs (pipeline executions per
// tick) without changing any result.
func RunSchedBench(cfg Config) *SchedBenchResult {
	pool := seeds.Generate(schedBenchPool, cfg.Seed)
	res := &SchedBenchResult{
		Seed:    cfg.Seed,
		Steps:   cfg.SchedBenchSteps,
		Streams: 4,
		Pool:    schedBenchPool,
	}
	variants := []struct {
		kind     string
		cacheCap int
	}{
		{"uniform", 0},
		{"uniform", 4096},
		{"adaptive", 0},
		{"adaptive", 4096},
	}
	for _, v := range variants {
		name := v.kind
		if v.cacheCap > 0 {
			name += "+cache"
		}
		comp := compilersim.New("gcc", 14)
		comp.EnableMutantCache(v.cacheCap)
		// Self-guided μCFuzz streams: the paper's core fuzzer, and it
		// compiles at fixed options, so duplicate mutants actually hit
		// the cache (the macro fuzzer's random flag sampling would give
		// every duplicate a distinct cache key).
		factory := func(stream int, rng *rand.Rand, _ fuzz.CoverageSink) engine.Worker {
			mf := fuzz.NewMuCFuzz(fmt.Sprintf("bench-%s-%d", name, stream),
				comp, muast.All(), pool, rng)
			s, err := sched.New(v.kind, len(muast.All()))
			if err != nil {
				panic(err)
			}
			mf.Sched = s
			return mf
		}
		ecfg := engine.Config{
			Streams:    res.Streams,
			Workers:    cfg.EngineWorkers,
			TotalSteps: cfg.SchedBenchSteps,
			Seed:       cfg.Seed,
			Registry:   cfg.Obs,
		}
		parseHits0, _ := cast.ParseCacheStats()
		start := time.Now()
		c := engine.New(ecfg, factory)
		if err := c.Run(context.Background()); err != nil {
			panic(err) // no checkpointing or cancellation in the bench
		}
		secs := time.Since(start).Seconds()
		parseHits1, _ := cast.ParseCacheStats()

		st := c.MergedStats()
		hits, _ := comp.CacheStats()
		row := SchedBenchVariant{
			Name:           name,
			Sched:          v.kind,
			CacheCap:       v.cacheCap,
			Ticks:          st.Ticks,
			Edges:          st.Coverage.Count(),
			Crashes:        st.UniqueCrashes(),
			Compiles:       st.Ticks - int(hits),
			CacheHits:      hits,
			ParseCacheHits: parseHits1 - parseHits0,
			Seconds:        secs,
		}
		if st.Ticks > 0 {
			row.EdgesPer1kTicks = 1000 * float64(row.Edges) / float64(st.Ticks)
		}
		if secs > 0 {
			row.EdgesPerSec = float64(row.Edges) / secs
		}
		res.Variants = append(res.Variants, row)
	}
	return res
}

// Render prints the ablation as a table.
func (r *SchedBenchResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Scheduling/cache ablation: %d steps x %d streams, seed %d, %d-program pool\n",
		r.Steps, r.Streams, r.Seed, r.Pool)
	fmt.Fprintf(&sb, "  %-16s %8s %8s %8s %12s %10s %10s %8s\n",
		"variant", "ticks", "edges", "crashes", "edges/1kT", "compiles", "hits", "secs")
	for _, v := range r.Variants {
		fmt.Fprintf(&sb, "  %-16s %8d %8d %8d %12.1f %10d %10d %8.2f\n",
			v.Name, v.Ticks, v.Edges, v.Crashes, v.EdgesPer1kTicks,
			v.Compiles, v.CacheHits, v.Seconds)
	}
	return sb.String()
}

// WriteJSON writes the ablation result (the BENCH_sched.json artifact).
func (r *SchedBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
