package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/core"
	"github.com/icsnju/metamut-go/internal/engine"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/llm"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/sched"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// RunCampaign executes the unsupervised MetaMut campaign once and
// analyzes it (shared by Tables 1-3).
func RunCampaign(cfg Config) *core.CampaignStats {
	client := llm.NewSimClient(cfg.Seed)
	llm.Instrument(client, cfg.Obs)
	fw := core.New(client, cfg.Seed+1)
	fw.Obs = cfg.Obs
	return core.Analyze(fw.RunUnsupervised(cfg.Invocations))
}

// Table1 renders the refinement-loop fix classification next to the
// paper's numbers.
func Table1(st *core.CampaignStats) string {
	paper := map[core.Goal]int{
		core.GoalCompiles: 55, core.GoalTerminates: 0, core.GoalReturns: 4,
		core.GoalOutputs: 11, core.GoalChanges: 1, core.GoalValidMutants: 36,
	}
	labels := map[core.Goal]string{
		core.GoalCompiles:     "mu not compile",
		core.GoalTerminates:   "mu hangs",
		core.GoalReturns:      "mu crashes",
		core.GoalOutputs:      "mu outputs nothing",
		core.GoalChanges:      "mu does not rewrite",
		core.GoalValidMutants: "mu creates compile-error mutant",
	}
	var sb strings.Builder
	sb.WriteString("Table 1: bugs fixed by the validation-refinement loop (unsupervised campaign)\n")
	fmt.Fprintf(&sb, "  # %-34s %9s %8s\n", "Validation Goal's Violations", "Fixed(#)", "paper")
	total, paperTotal := 0, 0
	for g := core.GoalCompiles; g <= core.GoalValidMutants; g++ {
		fmt.Fprintf(&sb, "  %d %-34s %9d %8d\n", int(g), labels[g],
			st.FixedByGoal[g], paper[g])
		total += st.FixedByGoal[g]
		paperTotal += paper[g]
	}
	fmt.Fprintf(&sb, "    %-34s %9d %8d\n", "total", total, paperTotal)
	return sb.String()
}

func summaryRow(name string, s core.Summary, paperMin, paperMax, paperMedian, paperMean float64) string {
	return fmt.Sprintf("  %-16s %8.0f %8.0f %8.0f %8.0f   (paper: %.0f/%.0f/%.0f/%.0f)\n",
		name, s.Min, s.Max, s.Median, s.Mean, paperMin, paperMax, paperMedian, paperMean)
}

// Table2 renders generation cost per mutator with the paper's columns.
func Table2(st *core.CampaignStats) string {
	var sb strings.Builder
	sb.WriteString("Table 2: generation cost of one mutator (valid mutators; min/max/median/mean)\n")
	sb.WriteString("  Tokens\n")
	sb.WriteString(summaryRow("  Invention", st.TokensInvention, 359, 2240, 1130, 1158))
	sb.WriteString(summaryRow("  Implementation", st.TokensImplementation, 372, 3870, 2488, 2501))
	sb.WriteString(summaryRow("  Bug-Fixing", st.TokensBugFix, 335, 30923, 2077, 4935))
	sb.WriteString(summaryRow("  Total", st.TokensTotal, 3214, 35312, 6054, 8595))
	sb.WriteString("  QA rounds\n")
	sb.WriteString(summaryRow("  Bug-Fixing", st.QABugFix, 1, 23, 2, 4))
	sb.WriteString(summaryRow("  Total", st.QATotal, 3, 25, 4, 6))
	sb.WriteString("  Time (s)\n")
	sb.WriteString(summaryRow("  Invention", st.TimeInvention, 11, 21, 15, 15))
	sb.WriteString(summaryRow("  Implementation", st.TimeImplementation, 14, 101, 49, 49))
	sb.WriteString(summaryRow("  Bug-Fixing", st.TimeBugFix, 29, 1876, 130, 281))
	sb.WriteString(summaryRow("  Total", st.TimeTotal, 83, 1949, 189, 346))
	fmt.Fprintf(&sb, "  mean API cost per mutator: $%.2f (paper: ~$0.50)\n",
		st.MeanDollarCost)
	return sb.String()
}

// Table3 renders the wait/prepare split.
func Table3(st *core.CampaignStats) string {
	var sb strings.Builder
	sb.WriteString("Table 3: request/response time of a single mutator (s per QA round)\n")
	sb.WriteString(summaryRow("Wait", st.WaitPerRound, 11, 123, 46, 43))
	sb.WriteString(summaryRow("Prepare", st.PreparePerRound, 0, 69, 9, 17))
	return sb.String()
}

// MutatorOverview renders the Section 4.1 registry statistics.
func MutatorOverview() string {
	var sb strings.Builder
	sb.WriteString("Section 4.1: the 118 mutators\n")
	fmt.Fprintf(&sb, "  %-12s %6s %6s %6s\n", "category", "M_s", "M_u", "total")
	cats := []muast.Category{muast.CatVariable, muast.CatExpression,
		muast.CatStatement, muast.CatFunction, muast.CatType}
	for _, c := range cats {
		s, u := 0, 0
		for _, mu := range muast.ByCategory(c) {
			if mu.Set == muast.Supervised {
				s++
			} else {
				u++
			}
		}
		fmt.Fprintf(&sb, "  %-12s %6d %6d %6d\n", c, s, u, s+u)
	}
	creative := 0
	for _, mu := range muast.All() {
		if mu.Creative {
			creative++
		}
	}
	fmt.Fprintf(&sb, "  supervised=%d unsupervised=%d creative=%d total=%d\n",
		len(muast.BySet(muast.Supervised)), len(muast.BySet(muast.Unsupervised)),
		creative, len(muast.All()))
	return sb.String()
}

// ---------------------------------------------------------------------
// Table 6 — bug-hunting campaign (RQ2)
// ---------------------------------------------------------------------

// BugReport is one reported compiler bug with its (simulated) triage
// outcome, mirroring the GCC/Clang bug-tracker workflow.
type BugReport struct {
	Crash     fuzz.CrashInfo
	Compiler  string
	Confirmed bool
	Fixed     bool
	Duplicate bool
}

// Table6Result is the RQ2 campaign output.
type Table6Result struct {
	Reports []BugReport
	// Triage holds the per-compiler ranked triage reports, in campaign
	// order (clang, gcc).
	Triage []*engine.TriageReport
	// Err records a campaign interruption (cfg.Ctx cancelled) or a
	// checkpoint failure; partial results above are still valid.
	Err error
}

// RunTable6 runs the macro fuzzer (all 118 mutators, Havoc, flag
// sampling, shared coverage) against the latest versions of both
// compilers and triages the crashes. The campaign runs on the parallel
// engine: cfg.MacroWorkers logical streams executed by
// cfg.EngineWorkers goroutines, checkpointed per compiler when
// cfg.CheckpointDir is set.
func RunTable6(cfg Config) *Table6Result {
	pool := seeds.Generate(cfg.SeedPrograms, cfg.Seed)
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res := &Table6Result{}
	for ci, compName := range []string{"clang", "gcc"} {
		version := 18
		if compName == "gcc" {
			version = 14
		}
		comp := compilersim.New(compName, version)
		comp.Instrument(cfg.Obs)
		factory := func(stream int, rng *rand.Rand, cov fuzz.CoverageSink) engine.Worker {
			mf := fuzz.NewMacroFuzzer(
				fmt.Sprintf("macro-%s-%d", compName, stream), comp, muast.All(),
				pool, rng, cov, fuzz.DefaultMacroConfig())
			if cfg.Sched != "" {
				s, err := sched.New(cfg.Sched, len(muast.All()))
				if err != nil {
					panic(err) // Config.Sched is CLI-validated; a bad literal is a bug
				}
				mf.Sched = s
			}
			mf.Stats().Instrument(cfg.Obs)
			mf.InstrumentSched(cfg.Obs)
			return mf
		}
		ecfg := engine.Config{
			Streams:    cfg.MacroWorkers,
			Workers:    cfg.EngineWorkers,
			TotalSteps: cfg.MacroSteps,
			Seed:       cfg.Seed + int64(ci*100),
			Registry:   cfg.Obs,
		}
		var c *engine.Campaign
		if cfg.CheckpointDir != "" {
			path := filepath.Join(cfg.CheckpointDir, "table6-"+compName+".json")
			ecfg.CheckpointPath = path
			if _, err := os.Stat(path); err == nil {
				c, err = engine.Resume(path, ecfg, factory)
				if err != nil {
					res.Err = err
					return res
				}
			}
		}
		if c == nil {
			c = engine.New(ecfg, factory)
		}
		if err := c.Run(ctx); err != nil {
			res.Err = err
			return res
		}
		res.Triage = append(res.Triage, c.Triage(comp, engine.TriageConfig{
			Reduce:   cfg.TriageReduce,
			Registry: cfg.Obs,
		}))
		merged := c.MergedStats().Crashes
		// Deterministic triage per crash signature: developers confirmed
		// 129/131 reports, fixed 35, and 13 were duplicates of earlier
		// reports by others.
		var sigs []string
		for sig := range merged {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			h := cover.HashString(sig)
			rep := BugReport{
				Crash:     *merged[sig],
				Compiler:  compName,
				Confirmed: h%100 < 98, // ~2% stay unreproduced
				Duplicate: h%100 >= 90,
			}
			rep.Fixed = rep.Confirmed && (h>>8)%100 < 27
			res.Reports = append(res.Reports, rep)
		}
	}
	return res
}

// Table6 renders the campaign overview in the paper's three blocks.
func Table6(r *Table6Result) string {
	count := func(pred func(BugReport) bool) (clang, gcc int) {
		for _, rep := range r.Reports {
			if !pred(rep) {
				continue
			}
			if rep.Compiler == "clang" {
				clang++
			} else {
				gcc++
			}
		}
		return
	}
	var sb strings.Builder
	sb.WriteString("Table 6: overview of the reported compiler bugs\n")
	fmt.Fprintf(&sb, "  %-22s %7s %7s %7s\n", "", "Clang", "GCC", "Total")
	c, g := count(func(BugReport) bool { return true })
	fmt.Fprintf(&sb, "  %-22s %7d %7d %7d\n", "Reported", c, g, c+g)
	c, g = count(func(b BugReport) bool { return b.Confirmed })
	fmt.Fprintf(&sb, "  %-22s %7d %7d %7d\n", "Confirmed", c, g, c+g)
	c, g = count(func(b BugReport) bool { return b.Fixed })
	fmt.Fprintf(&sb, "  %-22s %7d %7d %7d\n", "Fixed", c, g, c+g)
	c, g = count(func(b BugReport) bool { return b.Duplicate })
	fmt.Fprintf(&sb, "  %-22s %7d %7d %7d\n", "Duplicate", c, g, c+g)
	sb.WriteString("  -- affected compiler modules --\n")
	for _, comp := range []compilersim.Component{compilersim.FrontEnd,
		compilersim.IRGen, compilersim.Opt, compilersim.BackEnd} {
		comp := comp
		c, g = count(func(b BugReport) bool { return b.Crash.Report.Component == comp })
		fmt.Fprintf(&sb, "  %-22s %7d %7d %7d\n", comp, c, g, c+g)
	}
	sb.WriteString("  -- consequences --\n")
	for _, kind := range []compilersim.CrashKind{compilersim.SegmentationFault,
		compilersim.AssertionFailure, compilersim.Hang} {
		kind := kind
		c, g = count(func(b BugReport) bool { return b.Crash.Report.Kind == kind })
		fmt.Fprintf(&sb, "  %-22s %7d %7d %7d\n", kind, c, g, c+g)
	}
	return sb.String()
}
