package experiments

import (
	"strings"
	"testing"
)

// tinyConfig keeps the in-test campaigns fast.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.SeedPrograms = 40
	cfg.StepsPerFuzzer = 700
	cfg.CoverageSamples = 7
	cfg.Table5Steps = 200
	cfg.Table5Reps = 2
	cfg.Invocations = 30
	cfg.MacroWorkers = 2
	cfg.MacroSteps = 1500
	return cfg
}

func TestRQ1ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	cfg := tinyConfig()
	cfg.StepsPerFuzzer = 2000
	r := RunRQ1(cfg)
	if len(r.Runs) != 12 {
		t.Fatalf("runs = %d, want 12", len(r.Runs))
	}
	for _, compName := range []string{"gcc", "clang"} {
		edges := func(f string) int { return r.run(f, compName).Stats.Coverage.Count() }
		// The paper's coverage ordering: μCFuzz > GrayC > AFL++ >
		// {Csmith, YARPGen}; both μCFuzz variants must beat GrayC.
		if edges("muCFuzz.s") <= edges("GrayC") || edges("muCFuzz.u") <= edges("GrayC") {
			t.Errorf("[%s] muCFuzz (%d/%d) should out-cover GrayC (%d)", compName,
				edges("muCFuzz.s"), edges("muCFuzz.u"), edges("GrayC"))
		}
		if edges("GrayC") <= edges("AFL++") {
			t.Errorf("[%s] GrayC (%d) should out-cover AFL++ (%d)",
				compName, edges("GrayC"), edges("AFL++"))
		}
		if edges("AFL++") <= edges("Csmith") {
			t.Errorf("[%s] AFL++ (%d) should out-cover Csmith (%d)",
				compName, edges("AFL++"), edges("Csmith"))
		}
		// Csmith finds no crashes (saturation).
		if n := r.run("Csmith", compName).Stats.UniqueCrashes(); n != 0 {
			t.Errorf("[%s] Csmith found %d crashes, want 0", compName, n)
		}
		// Coverage series must be monotone.
		for _, run := range r.runsFor(compName) {
			for i := 1; i < len(run.CoverageSeries); i++ {
				if run.CoverageSeries[i] < run.CoverageSeries[i-1] {
					t.Errorf("[%s/%s] coverage series decreases at %d",
						compName, run.Fuzzer, i)
				}
			}
		}
	}
	// μCFuzz combined must find the most crashes.
	mu := r.run("muCFuzz.s", "gcc").Stats.UniqueCrashes() +
		r.run("muCFuzz.s", "clang").Stats.UniqueCrashes()
	afl := r.run("AFL++", "gcc").Stats.UniqueCrashes() +
		r.run("AFL++", "clang").Stats.UniqueCrashes()
	if mu <= afl {
		t.Errorf("muCFuzz.s crashes (%d) should exceed AFL++ (%d)", mu, afl)
	}
	// Renderers must produce all sections.
	for name, text := range map[string]string{
		"fig7": Figure7(r), "fig8": Figure8(r), "fig9": Figure9(r),
		"table4": Table4(r),
	} {
		if !strings.Contains(text, "muCFuzz.s") {
			t.Errorf("%s rendering missing fuzzer rows:\n%s", name, text)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	rows := RunTable5(tinyConfig())
	byTool := map[string]Table5Row{}
	for _, r := range rows {
		byTool[r.Tool] = r
	}
	if r := byTool["AFL++"]; r.Ratio > 15 {
		t.Errorf("AFL++ ratio = %.1f, want a few %%", r.Ratio)
	}
	for _, tool := range []string{"GrayC", "Csmith", "YARPGen"} {
		if r := byTool[tool]; r.Ratio < 95 {
			t.Errorf("%s ratio = %.1f, want ~99%%", tool, r.Ratio)
		}
	}
	for _, tool := range []string{"muCFuzz.s", "muCFuzz.u"} {
		r := byTool[tool]
		if r.Ratio < 55 || r.Ratio > 95 {
			t.Errorf("%s ratio = %.1f, want ~70-80%% (paper 72-74%%)", tool, r.Ratio)
		}
	}
	if byTool["muCFuzz.s"].Ratio <= byTool["AFL++"].Ratio {
		t.Error("muCFuzz must be far more compilable than AFL++")
	}
}

func TestTable6CampaignAndTriage(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	cfg := tinyConfig()
	cfg.MacroSteps = 4000
	r := RunTable6(cfg)
	if len(r.Reports) == 0 {
		t.Fatal("campaign found nothing")
	}
	confirmed, fixed, dup := 0, 0, 0
	for _, rep := range r.Reports {
		if rep.Confirmed {
			confirmed++
		}
		if rep.Fixed {
			fixed++
		}
		if rep.Duplicate {
			dup++
		}
		if rep.Fixed && !rep.Confirmed {
			t.Error("fixed but not confirmed")
		}
	}
	if confirmed == 0 {
		t.Error("nothing confirmed")
	}
	text := Table6(r)
	for _, want := range []string{"Reported", "Confirmed", "Front-End",
		"Assertion Failure"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 6 rendering missing %q", want)
		}
	}
}

func TestCampaignTables(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	st := RunCampaign(tinyConfig())
	t1, t2, t3 := Table1(st), Table2(st), Table3(st)
	if !strings.Contains(t1, "compile-error mutant") {
		t.Error("Table 1 missing goal-6 row")
	}
	if !strings.Contains(t2, "Bug-Fixing") || !strings.Contains(t2, "$") {
		t.Error("Table 2 missing rows")
	}
	if !strings.Contains(t3, "Wait") || !strings.Contains(t3, "Prepare") {
		t.Error("Table 3 missing rows")
	}
}

func TestMutatorOverviewCounts(t *testing.T) {
	text := MutatorOverview()
	for _, want := range []string{"supervised=68", "unsupervised=50", "total=118"} {
		if !strings.Contains(text, want) {
			t.Errorf("overview missing %q:\n%s", want, text)
		}
	}
}

func TestRQ1Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	cfg := tinyConfig()
	cfg.StepsPerFuzzer = 300
	a := RunRQ1(cfg)
	b := RunRQ1(cfg)
	for i := range a.Runs {
		if a.Runs[i].Stats.Coverage.Count() != b.Runs[i].Stats.Coverage.Count() ||
			a.Runs[i].Stats.UniqueCrashes() != b.Runs[i].Stats.UniqueCrashes() {
			t.Fatalf("run %s/%s not reproducible",
				a.Runs[i].Fuzzer, a.Runs[i].Compiler)
		}
	}
}
