// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 4.2 and Section 5) on the simulated substrate:
//
//	Table 1  — refinement-loop fix classification
//	Table 2  — per-mutator generation cost
//	Table 3  — request/response time split
//	Figure 7 — coverage trends of the six fuzzers
//	Figure 8 — unique-crash Venn summary
//	Figure 9 — unique crashes over time
//	Table 4  — crash distribution over compiler components
//	Table 5  — compilable-mutant ratios
//	Table 6  — bug-hunting campaign overview
//
// Absolute numbers are scaled (minutes on a simulator vs. 720 CPU-days
// on a testbed); EXPERIMENTS.md records shape-vs-paper for each.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/icsnju/metamut-go/internal/baselines"
	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/muast"
	_ "github.com/icsnju/metamut-go/internal/mutators" // register the 118
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/sched"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// Config scales the experiments. The defaults run the full suite in
// minutes; raise StepsPerFuzzer / MacroSteps for tighter curves.
type Config struct {
	// Seed drives every random stream (runs are reproducible).
	Seed int64
	// SeedPrograms is the seed-corpus size (paper: 1,839).
	SeedPrograms int
	// StepsPerFuzzer is the RQ1 budget per fuzzer per compiler, in
	// compilations (the virtual 24 hours).
	StepsPerFuzzer int
	// CoverageSamples is the number of points on the Figure 7/9 curves.
	CoverageSamples int
	// Table5Steps and Table5Reps configure the compilable-mutant runs.
	Table5Steps int
	Table5Reps  int
	// Invocations is the unsupervised MetaMut campaign size (paper: 100).
	Invocations int
	// MacroWorkers and MacroSteps configure the RQ2 campaign.
	// MacroWorkers is the number of logical fuzzing streams — part of
	// the campaign's identity (changing it changes the results);
	// EngineWorkers below only changes how fast they run.
	MacroWorkers int
	MacroSteps   int
	// EngineWorkers is the goroutine count executing the RQ2 streams
	// (0 → GOMAXPROCS). Results are identical at any value.
	EngineWorkers int
	// CheckpointDir, when set, makes the RQ2 campaign write per-compiler
	// snapshots (table6-<compiler>.json) there and resume from existing
	// ones, so an interrupted run picks up where it left off.
	CheckpointDir string
	// TriageReduce minimizes each triaged RQ2 witness via
	// internal/reduce (slower; off by default).
	TriageReduce bool
	// Sched selects the mutator scheduling policy for the μCFuzz and
	// macro campaigns: "" or "uniform" keeps the legacy unbiased
	// shuffle (baseline results stay bit-identical), "adaptive" runs
	// the per-stream UCB bandit from internal/sched.
	Sched string
	// SchedBenchSteps is the per-variant budget of the scheduling/cache
	// ablation (RunSchedBench).
	SchedBenchSteps int
	// Ctx, when non-nil, interrupts the RQ2 campaign at the next epoch
	// barrier once cancelled (the CLI wires SIGINT here); progress is
	// checkpointed when CheckpointDir is set.
	Ctx context.Context
	// Obs, when non-nil, receives metrics from every campaign the
	// experiments run (compilers, fuzzer stats, LLM clients). All
	// instrumentation is nil-safe, so a nil Obs costs nothing.
	Obs *obs.Registry
}

// DefaultConfig returns the scaled-down defaults.
func DefaultConfig() Config {
	return Config{
		Seed:            20240427,
		SeedPrograms:    120,
		StepsPerFuzzer:  4000,
		CoverageSamples: 24,
		Table5Steps:     800,
		Table5Reps:      10,
		Invocations:     100,
		MacroWorkers:    6,
		MacroSteps:      24000,
		SchedBenchSteps: 6000,
	}
}

// FuzzerNames in display order.
var FuzzerNames = []string{
	"muCFuzz.s", "muCFuzz.u", "AFL++", "GrayC", "Csmith", "YARPGen",
}

// newFuzzer builds the named technique over the given compiler. The
// μCFuzz variants honor cfg.Sched; baselines have no mutator arms to
// schedule.
func newFuzzer(cfg Config, name string, comp *compilersim.Compiler,
	pool []string, rng *rand.Rand) fuzz.Fuzzer {
	applySched := func(f *fuzz.MuCFuzz, arms int) {
		if cfg.Sched == "" {
			return
		}
		s, err := sched.New(cfg.Sched, arms)
		if err != nil {
			panic(err) // Config.Sched is CLI-validated; a bad literal is a bug
		}
		f.Sched = s
	}
	switch name {
	case "muCFuzz.s":
		set := muast.BySet(muast.Supervised)
		f := fuzz.NewMuCFuzz(name, comp, set, pool, rng)
		// Supervised mutators were manually corrected by the authors:
		// fewer unchecked rewrites slip through (Table 5: 74.46% vs
		// 72.00% compilable).
		f.UncheckedRate = fuzz.DefaultUncheckedRate - 0.07
		applySched(f, len(set))
		return f
	case "muCFuzz.u":
		set := muast.BySet(muast.Unsupervised)
		f := fuzz.NewMuCFuzz(name, comp, set, pool, rng)
		f.UncheckedRate = fuzz.DefaultUncheckedRate + 0.05
		applySched(f, len(set))
		return f
	case "AFL++":
		return baselines.NewAFL(name, comp, pool, rng)
	case "GrayC":
		return baselines.NewGrayC(name, comp, pool, rng)
	case "Csmith":
		return baselines.NewCsmith(name, comp, rng)
	case "YARPGen":
		return baselines.NewYARPGen(name, comp, rng)
	}
	panic("unknown fuzzer " + name)
}

// RQ1Run holds one fuzzer's trajectory on one compiler.
type RQ1Run struct {
	Fuzzer   string
	Compiler string
	// CoverageSeries[i] is the edge count after (i+1)/len fraction of the
	// budget (Figure 7).
	CoverageSeries []int
	Stats          *fuzz.Stats
}

// RQ1Result is the full comparison experiment: 6 fuzzers × 2 compilers.
type RQ1Result struct {
	Cfg  Config
	Runs []RQ1Run
}

// RunRQ1 executes the comparison campaign behind Figures 7-9 and
// Tables 4-5's companion columns.
func RunRQ1(cfg Config) *RQ1Result {
	pool := seeds.Generate(cfg.SeedPrograms, cfg.Seed)
	res := &RQ1Result{Cfg: cfg}
	for _, compName := range []string{"gcc", "clang"} {
		version := 14
		if compName == "clang" {
			version = 18
		}
		comp := compilersim.New(compName, version)
		comp.Instrument(cfg.Obs)
		for fi, fname := range FuzzerNames {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(fi)*977))
			f := newFuzzer(cfg, fname, comp, pool, rng)
			f.Stats().Instrument(cfg.Obs)
			run := RQ1Run{Fuzzer: fname, Compiler: compName}
			interval := cfg.StepsPerFuzzer / cfg.CoverageSamples
			if interval == 0 {
				interval = 1
			}
			for f.Stats().Ticks < cfg.StepsPerFuzzer {
				f.Step()
				if f.Stats().Ticks%interval == 0 &&
					len(run.CoverageSeries) < cfg.CoverageSamples {
					run.CoverageSeries = append(run.CoverageSeries,
						f.Stats().Coverage.Count())
				}
			}
			for len(run.CoverageSeries) < cfg.CoverageSamples {
				run.CoverageSeries = append(run.CoverageSeries,
					f.Stats().Coverage.Count())
			}
			run.Stats = f.Stats()
			res.Runs = append(res.Runs, run)
		}
	}
	return res
}

// runsFor filters by compiler.
func (r *RQ1Result) runsFor(compiler string) []RQ1Run {
	var out []RQ1Run
	for _, run := range r.Runs {
		if run.Compiler == compiler {
			out = append(out, run)
		}
	}
	return out
}

// run returns the named run.
func (r *RQ1Result) run(fuzzer, compiler string) *RQ1Run {
	for i := range r.Runs {
		if r.Runs[i].Fuzzer == fuzzer && r.Runs[i].Compiler == compiler {
			return &r.Runs[i]
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Figure 7 — coverage trends
// ---------------------------------------------------------------------

// Figure7 renders the coverage-trend series for both compilers.
func Figure7(r *RQ1Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 7: branch-coverage trends (edges covered; one row per sample over the budget)\n")
	for _, compName := range []string{"gcc", "clang"} {
		fmt.Fprintf(&sb, "\n  [%s]\n  %-8s", compName, "t")
		for _, fn := range FuzzerNames {
			fmt.Fprintf(&sb, "%12s", fn)
		}
		sb.WriteString("\n")
		runs := r.runsFor(compName)
		n := r.Cfg.CoverageSamples
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "  %3d/%-4d", i+1, n)
			for _, fn := range FuzzerNames {
				for _, run := range runs {
					if run.Fuzzer == fn {
						fmt.Fprintf(&sb, "%12d", run.CoverageSeries[i])
					}
				}
			}
			sb.WriteString("\n")
		}
		// Ordering summary line in the spirit of the paper's text.
		final := map[string]int{}
		for _, run := range runs {
			final[run.Fuzzer] = run.Stats.Coverage.Count()
		}
		fmt.Fprintf(&sb, "  final: %s\n", orderingString(final))
	}
	return sb.String()
}

func orderingString(scores map[string]int) string {
	type kv struct {
		k string
		v int
	}
	var list []kv
	for k, v := range scores {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].v > list[j].v })
	var parts []string
	for _, e := range list {
		parts = append(parts, fmt.Sprintf("%s(%d)", e.k, e.v))
	}
	return strings.Join(parts, " > ")
}

// ---------------------------------------------------------------------
// Figure 8 — unique-crash Venn
// ---------------------------------------------------------------------

// Figure8 summarizes the crash sets: per-fuzzer totals (crashes found on
// either compiler), the μCFuzz-exclusive share, and total distinct
// crashes — the quantities the paper reads off its Venn diagram.
func Figure8(r *RQ1Result) string {
	sigsBy := map[string]map[string]bool{}
	all := map[string]bool{}
	for _, run := range r.Runs {
		m := sigsBy[run.Fuzzer]
		if m == nil {
			m = map[string]bool{}
			sigsBy[run.Fuzzer] = m
		}
		for sig := range run.Stats.Crashes {
			m[sig] = true
			all[sig] = true
		}
	}
	mu := map[string]bool{}
	others := map[string]bool{}
	for fn, sigs := range sigsBy {
		for sig := range sigs {
			if fn == "muCFuzz.s" || fn == "muCFuzz.u" {
				mu[sig] = true
			} else {
				others[sig] = true
			}
		}
	}
	muOnly, shared, othersOnly := 0, 0, 0
	for sig := range all {
		switch {
		case mu[sig] && others[sig]:
			shared++
		case mu[sig]:
			muOnly++
		default:
			othersOnly++
		}
	}
	var sb strings.Builder
	sb.WriteString("Figure 8: unique crashes per technique (both compilers, dedup by top-2 frames)\n")
	for _, fn := range FuzzerNames {
		fmt.Fprintf(&sb, "  %-10s %3d\n", fn, len(sigsBy[fn]))
	}
	fmt.Fprintf(&sb, "  total distinct: %d\n", len(all))
	fmt.Fprintf(&sb, "  muCFuzz-exclusive: %d   shared: %d   others-only: %d\n",
		muOnly, shared, othersOnly)
	return sb.String()
}

// ---------------------------------------------------------------------
// Figure 9 — crash discovery over time
// ---------------------------------------------------------------------

// Figure9 renders each fuzzer's cumulative unique-crash curve.
func Figure9(r *RQ1Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 9: unique crashes over time (cumulative; one row per sample)\n")
	for _, compName := range []string{"gcc", "clang"} {
		fmt.Fprintf(&sb, "\n  [%s]\n  %-8s", compName, "t")
		for _, fn := range FuzzerNames {
			fmt.Fprintf(&sb, "%12s", fn)
		}
		sb.WriteString("\n")
		n := r.Cfg.CoverageSamples
		budget := r.Cfg.StepsPerFuzzer
		for i := 1; i <= n; i++ {
			cutoff := budget * i / n
			fmt.Fprintf(&sb, "  %3d/%-4d", i, n)
			for _, fn := range FuzzerNames {
				run := r.run(fn, compName)
				count := 0
				for _, c := range run.Stats.Crashes {
					if c.FirstTick <= cutoff {
						count++
					}
				}
				fmt.Fprintf(&sb, "%12d", count)
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// Table 4 — crash distribution by component
// ---------------------------------------------------------------------

// Table4 renders unique crashes per compiler component (both compilers
// merged, as in the paper).
func Table4(r *RQ1Result) string {
	var sb strings.Builder
	sb.WriteString("Table 4: unique crashes by compiler component\n")
	fmt.Fprintf(&sb, "  %-10s %10s %6s %6s %10s %7s\n",
		"", "Front-End", "IR", "Opt", "Back-End", "Total")
	for _, fn := range FuzzerNames {
		sigSeen := map[string]compilersim.Component{}
		for _, compName := range []string{"gcc", "clang"} {
			run := r.run(fn, compName)
			for sig, c := range run.Stats.Crashes {
				sigSeen[sig] = c.Report.Component
			}
		}
		counts := map[compilersim.Component]int{}
		for _, comp := range sigSeen {
			counts[comp]++
		}
		fmt.Fprintf(&sb, "  %-10s %10d %6d %6d %10d %7d\n", fn,
			counts[compilersim.FrontEnd], counts[compilersim.IRGen],
			counts[compilersim.Opt], counts[compilersim.BackEnd], len(sigSeen))
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// Table 5 — compilable mutants
// ---------------------------------------------------------------------

// Table5Row is one technique's compilable-mutant measurement.
type Table5Row struct {
	Tool       string
	Compilable int
	Total      int
	Ratio      float64
}

// RunTable5 measures the average compilable ratio over cfg.Table5Reps
// repeated runs (the paper repeats its 24-hour run ten times).
func RunTable5(cfg Config) []Table5Row {
	pool := seeds.Generate(cfg.SeedPrograms, cfg.Seed)
	comp := compilersim.New("gcc", 14)
	comp.Instrument(cfg.Obs)
	var rows []Table5Row
	for fi, fname := range FuzzerNames {
		row := Table5Row{Tool: fname}
		for rep := 0; rep < cfg.Table5Reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(fi*1000+rep)))
			f := newFuzzer(cfg, fname, comp, pool, rng)
			f.Stats().Instrument(cfg.Obs)
			for f.Stats().Ticks < cfg.Table5Steps {
				f.Step()
			}
			row.Compilable += f.Stats().Compilable
			row.Total += f.Stats().Total
		}
		if row.Total > 0 {
			row.Ratio = 100 * float64(row.Compilable) / float64(row.Total)
		}
		rows = append(rows, row)
	}
	return rows
}

// Table5 renders the rows.
func Table5(rows []Table5Row) string {
	var sb strings.Builder
	sb.WriteString("Table 5: compilable test programs (averaged over repetitions)\n")
	fmt.Fprintf(&sb, "  %-10s %14s %12s %9s\n", "Tool", "Compilable(#)", "Total(#)", "Ratio(%)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10s %14d %12d %9.2f\n", r.Tool, r.Compilable, r.Total, r.Ratio)
	}
	return sb.String()
}
