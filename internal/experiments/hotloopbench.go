package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/engine"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// HotLoopVariant is one cell of the hot-loop bench: the same μCFuzz
// campaign at a given reward-batching width.
type HotLoopVariant struct {
	Name  string `json:"name"`
	Batch int    `json:"batch"`

	Ticks       int     `json:"ticks"`
	Edges       int     `json:"edges"`
	Crashes     int     `json:"crashes"`
	Seconds     float64 `json:"seconds"`
	EdgesPerSec float64 `json:"edges_per_sec"`
	TicksPerSec float64 `json:"ticks_per_sec"`
}

// HotLoopBenchResult is the BENCH_hotloop.json payload: the
// mutate→compile→cover inner loop timed end to end on the engine, with
// reward batching off and on. Batching is an execution-strategy knob,
// so ticks/edges/crashes MUST be identical across variants — a
// difference is a determinism bug, not a perf result (see
// docs/PERFORMANCE.md, "determinism gates before perf claims").
type HotLoopBenchResult struct {
	Seed     int64            `json:"seed"`
	Steps    int              `json:"steps"`
	Streams  int              `json:"streams"`
	Pool     int              `json:"pool"`
	Variants []HotLoopVariant `json:"variants"`
}

// RunHotLoopBench times the zero-alloc hot loop on the 6k-step bench.
func RunHotLoopBench(cfg Config) *HotLoopBenchResult {
	pool := seeds.Generate(schedBenchPool, cfg.Seed)
	res := &HotLoopBenchResult{
		Seed:    cfg.Seed,
		Steps:   cfg.SchedBenchSteps,
		Streams: 4,
		Pool:    schedBenchPool,
	}
	for _, batch := range []int{1, 8} {
		name := fmt.Sprintf("batch=%d", batch)
		comp := compilersim.New("gcc", 14)
		factory := func(stream int, rng *rand.Rand, _ fuzz.CoverageSink) engine.Worker {
			mf := fuzz.NewMuCFuzz(fmt.Sprintf("hotloop-%s-%d", name, stream),
				comp, muast.All(), pool, rng)
			mf.Batch = batch
			return mf
		}
		ecfg := engine.Config{
			Streams:    res.Streams,
			Workers:    cfg.EngineWorkers,
			TotalSteps: cfg.SchedBenchSteps,
			Seed:       cfg.Seed,
			Registry:   cfg.Obs,
		}
		start := time.Now()
		c := engine.New(ecfg, factory)
		if err := c.Run(context.Background()); err != nil {
			panic(err) // no checkpointing or cancellation in the bench
		}
		secs := time.Since(start).Seconds()
		st := c.MergedStats()
		row := HotLoopVariant{
			Name:    name,
			Batch:   batch,
			Ticks:   st.Ticks,
			Edges:   st.Coverage.Count(),
			Crashes: st.UniqueCrashes(),
			Seconds: secs,
		}
		if secs > 0 {
			row.EdgesPerSec = float64(row.Edges) / secs
			row.TicksPerSec = float64(row.Ticks) / secs
		}
		res.Variants = append(res.Variants, row)
	}
	return res
}

// Render prints the bench as a table.
func (r *HotLoopBenchResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Hot-loop bench: %d steps x %d streams, seed %d, %d-program pool\n",
		r.Steps, r.Streams, r.Seed, r.Pool)
	fmt.Fprintf(&sb, "  %-10s %8s %8s %8s %8s %12s %12s\n",
		"variant", "ticks", "edges", "crashes", "secs", "edges/s", "ticks/s")
	for _, v := range r.Variants {
		fmt.Fprintf(&sb, "  %-10s %8d %8d %8d %8.2f %12.1f %12.1f\n",
			v.Name, v.Ticks, v.Edges, v.Crashes, v.Seconds, v.EdgesPerSec, v.TicksPerSec)
	}
	if len(r.Variants) == 2 {
		a, b := r.Variants[0], r.Variants[1]
		if a.Ticks != b.Ticks || a.Edges != b.Edges || a.Crashes != b.Crashes {
			sb.WriteString("  WARNING: variants diverge — batching broke determinism\n")
		}
	}
	return sb.String()
}

// WriteJSON writes the BENCH_hotloop.json artifact.
func (r *HotLoopBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
