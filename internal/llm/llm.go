// Package llm provides the language-model client used by the MetaMut
// framework. The paper drives GPT-4 through OpenAI's ChatCompletion API;
// this package defines the same call surface (prompted requests, token
// accounting, latency, throttling errors) and a deterministic simulated
// model whose behaviour — invention quality, implementation fault rates,
// repair ability, token/latency distributions — is calibrated to the
// paper's measurements (Tables 1-3, Section 4.1).
//
// The substitution is documented in DESIGN.md: everything around the
// model (prompts, template, validation loop) is real; only the text
// generator is statistical.
package llm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/mutdsl"
	"github.com/icsnju/metamut-go/internal/obs"
)

// Usage is the per-call accounting a ChatCompletion response carries.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
	// Wait is the simulated time awaiting the response (Table 3 row 1).
	Wait time.Duration
}

// TotalTokens returns prompt + completion tokens.
func (u Usage) TotalTokens() int { return u.PromptTokens + u.CompletionTokens }

// ErrThrottled models the API-side failures (rate limiting, timeouts)
// that killed 24 of the paper's 100 unsupervised invocations.
var ErrThrottled = errors.New("llm: API throttled or timed out")

// Params mirrors the sampling configuration the paper uses
// (temperature 0.8, top-p 0.95). AllowCompound opens the template design
// space the paper's Limitations section flags as future work: inventions
// may perform TWO actions on the same program structure.
type Params struct {
	Temperature   float64
	TopP          float64
	AllowCompound bool
}

// DefaultParams returns the paper's configuration.
func DefaultParams() Params { return Params{Temperature: 0.8, TopP: 0.95} }

// Invention is the model's answer to the mutator-invention prompt.
type Invention struct {
	Name        string
	Description string
	// Action and Structure echo the template slots; creative inventions
	// leave the listed vocabulary.
	Action    string
	Structure string
	Creative  bool
	// SecondAction is set for compound (two-action) inventions, the
	// template extension from the paper's Limitations section.
	SecondAction string
	// TargetKind is the AST node kind the description talks about.
	TargetKind cast.NodeKind
}

// Client is the call surface MetaMut needs from a language model.
type Client interface {
	// Invent asks for a new mutator name + description, given the
	// action/structure lists and the names generated so far (the
	// "sampling hints" that bias against duplicates).
	Invent(actions, structures, priorNames []string, p Params) (Invention, Usage, error)
	// Synthesize fills the mutator template for an invention, returning
	// a tentative implementation.
	Synthesize(inv Invention, p Params) (*mutdsl.Program, Usage, error)
	// GenerateTests produces test programs containing the structure the
	// mutator targets.
	GenerateTests(inv Invention, n int, p Params) ([]string, Usage, error)
	// Fix repairs an implementation given validation feedback (the
	// unmet goal number and its error message). It returns the revised
	// implementation.
	Fix(prog *mutdsl.Program, goal int, feedback string, p Params) (*mutdsl.Program, Usage, error)
}

// FaultRates calibrates the simulated model's implementation defects to
// the distribution MetaMut's refinement loop repaired (Table 1, per
// invocation over the 100-invocation unsupervised campaign).
type FaultRates struct {
	Syntax    float64 // goal #1: mutator does not compile
	Hang      float64 // goal #2: mutator hangs (never repaired)
	Crash     float64 // goal #3: mutator crashes
	NoOutput  float64 // goal #4: outputs nothing
	NoRewrite float64 // goal #5: does not rewrite
	BadMutant float64 // goal #6: creates compile-error mutants
	// RepeatSyntax is the chance a syntax fix introduces another syntax
	// error (why goal-#1 fixes dominate Table 1).
	RepeatSyntax float64
	// Mismatch marks implementations that pass every automated goal yet
	// do not do what the description says (7 of the paper's 26 invalid).
	Mismatch float64
	// Unthorough marks implementations whose defects only author-written
	// tests expose (10 of 26).
	Unthorough float64
	// Duplicate is the residual chance of inventing a duplicate despite
	// the sampling hints (3 of 26).
	Duplicate float64
	// APIError is the per-call throttling probability (~24% of
	// invocations at ~6 calls each).
	APIError float64
}

// DefaultFaultRates reproduces the paper's Section 4.1 statistics.
func DefaultFaultRates() FaultRates {
	return FaultRates{
		Syntax:       0.42,
		Hang:         0.065,
		Crash:        0.04,
		NoOutput:     0.11,
		NoRewrite:    0.01,
		BadMutant:    0.33,
		RepeatSyntax: 0.30,
		Mismatch:     0.075,
		Unthorough:   0.11,
		Duplicate:    0.033,
		APIError:     0.03,
	}
}

// Instrumentable is implemented by clients (and client wrappers) that
// accept an observability registry.
type Instrumentable interface {
	Instrument(reg *obs.Registry)
}

// Instrument attaches a registry to any client that supports it,
// looking through wrappers via the Instrumentable interface.
func Instrument(c Client, reg *obs.Registry) {
	if i, ok := c.(Instrumentable); ok {
		i.Instrument(reg)
	}
}

// Pipeline stages for llm_tokens{stage} / llm_wait_seconds{stage} —
// Table 2's cost rows (test generation is bucketed with bug fixing
// there, but telemetry keeps it distinct).
const (
	StageInvention      = "invention"
	StageImplementation = "implementation"
	StageTestGen        = "testgen"
	StageBugFix         = "bugfix"
)

// clientTelemetry holds the SimClient's metric handles.
type clientTelemetry struct {
	calls  *obs.CounterVec // llm_calls_total{method,result}
	tokens *obs.CounterVec // llm_tokens{stage}
	faults *obs.CounterVec // llm_faults_total{class}
	wait   *obs.HistogramVec
}

// record books one simulated API call.
func (t *clientTelemetry) record(method, stage string, u Usage, err error) {
	if t == nil {
		return
	}
	result := "ok"
	if err != nil {
		result = "throttled"
	}
	t.calls.With(method, result).Inc()
	t.tokens.With(stage).Add(int64(u.TotalTokens()))
	t.wait.With(stage).Observe(u.Wait.Seconds())
}

// fault books one injected implementation defect.
func (t *clientTelemetry) fault(class string) {
	if t == nil {
		return
	}
	t.faults.With(class).Inc()
}

// ArsenalGenerationCost is the Table-2 calibrated mean token spend per
// valid mutator, split by stage. Fuzzing-only tools (mucfuzz) charge
// this once per loaded mutator so their snapshots still surface the
// LLM cost the mutator arsenal embodies.
var ArsenalGenerationCost = map[string]int{
	StageInvention:      1100,
	StageImplementation: 3100,
	StageTestGen:        900,
	StageBugFix:         6800,
}

// RecordArsenalCost credits llm_tokens{stage} with the estimated
// generation cost of a pre-built arsenal of n mutators.
func RecordArsenalCost(reg *obs.Registry, n int) {
	if reg == nil || n <= 0 {
		return
	}
	tokens := reg.Counter("llm_tokens", "stage")
	for stage, perMutator := range ArsenalGenerationCost {
		tokens.With(stage).Add(int64(n * perMutator))
	}
}

// DynamicFeedbackTokens estimates, per validation goal, the extra
// prompt tokens a dynamic QA round spends carrying runtime evidence
// that a static diagnostic replaces: goal #3 quotes the crash stack,
// goal #5 the no-op run report, goal #6 dumps the failing mutant with
// its compiler diagnostics. Calibrated against the feedback strings the
// simulated validator produces.
var DynamicFeedbackTokens = map[int]int{3: 160, 5: 90, 6: 720}

// RecordStaticSavings credits llm_tokens_saved{goal} for one defect the
// static linter caught before the dynamic round ran — the token-cost
// attribution of the shift-left pipeline.
func RecordStaticSavings(reg *obs.Registry, goal int) {
	if reg == nil {
		return
	}
	reg.Counter("llm_tokens_saved", "goal").
		With(fmt.Sprintf("goal%d", goal)).
		Add(int64(DynamicFeedbackTokens[goal]))
}

// SimClient is the deterministic simulated GPT-4.
type SimClient struct {
	rng   *rand.Rand
	rates FaultRates
	tele  *clientTelemetry
	// Clock accumulates simulated wall time.
	Clock time.Duration
}

// Instrument attaches live telemetry: every call updates
// llm_calls_total{method,result}, llm_tokens{stage}, and the
// llm_wait_seconds{stage} histogram; injected defects count into
// llm_faults_total{class}.
func (c *SimClient) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.tele = &clientTelemetry{
		calls:  reg.Counter("llm_calls_total", "method", "result"),
		tokens: reg.Counter("llm_tokens", "stage"),
		faults: reg.Counter("llm_faults_total", "class"),
		wait:   reg.Histogram("llm_wait_seconds", nil, "stage"),
	}
}

// NewSimClient returns a simulated model with the default calibration.
func NewSimClient(seed int64) *SimClient {
	return &SimClient{rng: rand.New(rand.NewSource(seed)), rates: DefaultFaultRates()}
}

// NewSimClientWithRates returns a simulated model with custom fault
// calibration (used by ablation benches).
func NewSimClientWithRates(seed int64, rates FaultRates) *SimClient {
	return &SimClient{rng: rand.New(rand.NewSource(seed)), rates: rates}
}

// lognormal draws a log-normally distributed value with the given median
// and sigma, clamped to [lo, hi].
func (c *SimClient) lognormal(median, sigma, lo, hi float64) float64 {
	v := median * math.Exp(sigma*c.rng.NormFloat64())
	return math.Min(hi, math.Max(lo, v))
}

// waitFor draws a response latency scaled by the completion length, so
// short invention answers come back in ~15s and long implementations in
// ~50s, bounded by Table 3's observed 11-123s range.
func (c *SimClient) waitFor(completionTokens int) time.Duration {
	base := 2.0 + float64(completionTokens)/18.0
	d := time.Duration(c.lognormal(base, 0.25, 11, 123) * float64(time.Second))
	c.Clock += d
	return d
}

func (c *SimClient) throttled() bool { return c.rng.Float64() < c.rates.APIError }

// Actions is the [Action] vocabulary of the invention prompt (Section
// 3.1: derived from Clang AST/IR API member functions).
var Actions = []string{
	"Add", "Modify", "Copy", "Swap", "Inline", "Destruct", "Group",
	"Combine", "Lift", "Switch", "Inverse", "Remove", "Duplicate",
	"Wrap", "Split", "Merge", "Reorder", "Replace", "Expand", "Hoist",
}

// Structures is the [Program Structure] vocabulary (all AST node kinds).
var Structures = []string{
	"BinaryOperator", "UnaryOperator", "LogicalExpr", "CharLiteral",
	"IntegerLiteral", "FloatingLiteral", "StringLiteral", "IfStmt",
	"WhileStmt", "DoStmt", "ForStmt", "SwitchStmt", "CaseStmt",
	"ReturnStmt", "GotoStmt", "LabelStmt", "CompoundStmt", "VarDecl",
	"ParmVarDecl", "FunctionDecl", "FieldDecl", "CallExpr",
	"ArraySubscriptExpr", "MemberExpr", "CastExpr", "ConditionalExpr",
	"InitListExpr", "ArrayDimension", "Attribute", "Builtins",
}

// structureKind maps prompt vocabulary to concrete node kinds the DSL
// can visit; entries outside the AST map to a related kind.
var structureKind = map[string]cast.NodeKind{
	"BinaryOperator":     cast.KindBinaryOperator,
	"UnaryOperator":      cast.KindUnaryOperator,
	"LogicalExpr":        cast.KindBinaryOperator,
	"CharLiteral":        cast.KindCharLiteral,
	"IntegerLiteral":     cast.KindIntegerLiteral,
	"FloatingLiteral":    cast.KindFloatingLiteral,
	"StringLiteral":      cast.KindStringLiteral,
	"IfStmt":             cast.KindIfStmt,
	"WhileStmt":          cast.KindWhileStmt,
	"DoStmt":             cast.KindDoStmt,
	"ForStmt":            cast.KindForStmt,
	"SwitchStmt":         cast.KindSwitchStmt,
	"CaseStmt":           cast.KindCaseStmt,
	"ReturnStmt":         cast.KindReturnStmt,
	"GotoStmt":           cast.KindGotoStmt,
	"LabelStmt":          cast.KindLabelStmt,
	"CompoundStmt":       cast.KindCompoundStmt,
	"VarDecl":            cast.KindVarDecl,
	"ParmVarDecl":        cast.KindParmVarDecl,
	"FunctionDecl":       cast.KindFunctionDecl,
	"FieldDecl":          cast.KindFieldDecl,
	"CallExpr":           cast.KindCallExpr,
	"ArraySubscriptExpr": cast.KindArraySubscriptExpr,
	"MemberExpr":         cast.KindMemberExpr,
	"CastExpr":           cast.KindCastExpr,
	"ConditionalExpr":    cast.KindConditionalExpr,
	"InitListExpr":       cast.KindInitListExpr,
	"ArrayDimension":     cast.KindArraySubscriptExpr,
	"Attribute":          cast.KindVarDecl,
	"Builtins":           cast.KindCallExpr,
}

// creativeInventions are off-template mutators in the spirit of the 33
// "creative" ones the paper observed (Ret2V, SimpleUninliner, ...).
var creativeInventions = []Invention{
	{Name: "ModifyFunctionReturnTypeToVoid",
		Description: "Change a function's return type to void, remove all return statements, and replace all uses of the function's result with a default value.",
		Action:      "Modify", Structure: "FunctionDecl", Creative: true,
		TargetKind: cast.KindFunctionDecl},
	{Name: "SimpleUninliner",
		Description: "Turn a block of code into a function call.",
		Action:      "Lift", Structure: "CompoundStmt", Creative: true,
		TargetKind: cast.KindCompoundStmt},
	{Name: "TransformSwitchToIfElse",
		Description: "This mutator identifies a 'switch' statement in the code and transforms it into an equivalent series of 'if-else' statements, effectively altering the control flow structure.",
		Action:      "Switch", Structure: "SwitchStmt", Creative: true,
		TargetKind: cast.KindSwitchStmt},
	{Name: "DecayArrayToFlattenedStorage",
		Description: "Cast an aggregate into flat integer storage and rewrite member references into pointer arithmetic over it.",
		Action:      "Combine", Structure: "MemberExpr", Creative: true,
		TargetKind: cast.KindMemberExpr},
	{Name: "OutlineConditionIntoPredicate",
		Description: "Extract a branch condition into a new predicate function and call it at the original site.",
		Action:      "Lift", Structure: "IfStmt", Creative: true,
		TargetKind: cast.KindIfStmt},
}

// Invent samples a mutator name/description from the probability space
// the prompt defines (Section 3.1).
func (c *SimClient) Invent(actions, structures, priorNames []string, p Params) (Invention, Usage, error) {
	usage := Usage{
		PromptTokens:     700 + c.rng.Intn(300) + 4*len(priorNames),
		CompletionTokens: int(c.lognormal(240, 0.4, 60, 900)),
	}
	usage.Wait = c.waitFor(usage.CompletionTokens)
	if c.throttled() {
		c.tele.record("invent", StageInvention, usage, ErrThrottled)
		return Invention{}, usage, ErrThrottled
	}
	c.tele.record("invent", StageInvention, usage, nil)
	prior := map[string]bool{}
	for _, n := range priorNames {
		prior[n] = true
	}
	// Creative leap with modest probability (33/118 inventions were
	// off-template), scaled by temperature.
	if c.rng.Float64() < 0.28*p.Temperature/0.8 {
		inv := creativeInventions[c.rng.Intn(len(creativeInventions))]
		if !prior[inv.Name] || c.rng.Float64() < c.rates.Duplicate {
			return inv, usage, nil
		}
	}
	for attempt := 0; ; attempt++ {
		action := actions[c.rng.Intn(len(actions))]
		structure := structures[c.rng.Intn(len(structures))]
		second := ""
		if p.AllowCompound && c.rng.Float64() < 0.35 {
			second = actions[c.rng.Intn(len(actions))]
			if second == action {
				second = ""
			}
		}
		name := action + second + structure
		// The sampling hints bias against duplicates, but do not
		// eliminate them.
		if prior[name] && c.rng.Float64() >= c.rates.Duplicate && attempt < 25 {
			continue
		}
		inv := Invention{
			Name:   name,
			Action: action, Structure: structure, SecondAction: second,
			Description: fmt.Sprintf(
				"This mutator performs %s on %s: it locates a %s in the program and applies the %s transformation while keeping the program compilable.",
				action, structure, structure, action),
			TargetKind: structureKind[structure],
		}
		if second != "" {
			inv.Description = fmt.Sprintf(
				"This mutator performs %s followed by %s on %s, combining two small-step transformations while keeping the program compilable.",
				action, second, structure)
		}
		return inv, usage, nil
	}
}

// actionOp maps invented actions to DSL rewrite operations.
var actionOp = map[string]mutdsl.OpKind{
	"Add": mutdsl.OpInsertAfter, "Modify": mutdsl.OpWrapText,
	"Copy": mutdsl.OpReplaceWithCopy, "Swap": mutdsl.OpSwapWithSibling,
	"Inline": mutdsl.OpReplaceWithText, "Destruct": mutdsl.OpDeleteNode,
	"Group": mutdsl.OpWrapText, "Combine": mutdsl.OpReplaceWithCopy,
	"Lift": mutdsl.OpWrapText, "Switch": mutdsl.OpSwapWithSibling,
	"Inverse": mutdsl.OpWrapText, "Remove": mutdsl.OpDeleteNode,
	"Duplicate": mutdsl.OpDuplicateAfter, "Wrap": mutdsl.OpWrapText,
	"Split": mutdsl.OpWrapText, "Merge": mutdsl.OpReplaceWithCopy,
	"Reorder": mutdsl.OpSwapWithSibling, "Replace": mutdsl.OpReplaceWithText,
	"Expand": mutdsl.OpWrapText, "Hoist": mutdsl.OpSwapWithSibling,
}

// Synthesize fills the template (Figure 2) in one shot, producing a
// tentative implementation with the calibrated defect profile.
func (c *SimClient) Synthesize(inv Invention, p Params) (*mutdsl.Program, Usage, error) {
	usage := Usage{
		PromptTokens:     1500 + c.rng.Intn(500), // template + μAST header + example
		CompletionTokens: int(c.lognormal(900, 0.45, 200, 2400)),
	}
	usage.Wait = c.waitFor(usage.CompletionTokens)
	if c.throttled() {
		c.tele.record("synthesize", StageImplementation, usage, ErrThrottled)
		return nil, usage, ErrThrottled
	}
	c.tele.record("synthesize", StageImplementation, usage, nil)
	op, ok := actionOp[inv.Action]
	if !ok {
		op = mutdsl.OpWrapText
	}
	prog := &mutdsl.Program{
		Name:                  inv.Name,
		Description:           inv.Description,
		TargetKind:            inv.TargetKind,
		RequireSideEffectFree: c.rng.Float64() < 0.5,
	}
	mkStep := func(op mutdsl.OpKind) mutdsl.Step {
		switch op {
		case mutdsl.OpWrapText:
			pre, post := c.wrapPairFor(inv.TargetKind)
			return mutdsl.Step{Op: op, Pre: pre, Post: post}
		case mutdsl.OpReplaceWithText:
			return mutdsl.Step{Op: op, Text: c.replacementFor(inv.TargetKind)}
		case mutdsl.OpInsertAfter:
			return mutdsl.Step{Op: op, Text: c.insertionFor(inv.TargetKind)}
		default:
			return mutdsl.Step{Op: op}
		}
	}
	prog.Steps = []mutdsl.Step{mkStep(op)}
	if inv.SecondAction != "" {
		second, ok := actionOp[inv.SecondAction]
		if !ok {
			second = mutdsl.OpInsertAfter
		}
		// Two rewrites on the same node easily collide in the rewriter;
		// compound implementations carry a higher defect load, which is
		// exactly why the paper left multi-action templates as future
		// work.
		prog.Steps = append(prog.Steps, mkStep(second))
	}
	c.injectFaults(prog)
	return prog, usage, nil
}

// wrapPairFor picks a type-appropriate wrapping for the node kind.
func (c *SimClient) wrapPairFor(k cast.NodeKind) (string, string) {
	switch k {
	case cast.KindCompoundStmt:
		return "{ ", " }"
	case cast.KindIfStmt, cast.KindWhileStmt,
		cast.KindDoStmt, cast.KindForStmt, cast.KindSwitchStmt,
		cast.KindReturnStmt, cast.KindGotoStmt, cast.KindLabelStmt,
		cast.KindCaseStmt:
		return "if (1) { ", " }"
	case cast.KindVarDecl, cast.KindParmVarDecl, cast.KindFunctionDecl,
		cast.KindFieldDecl:
		return "", " /* grouped */"
	default:
		pairs := [][2]string{
			{"(", " + 0)"}, {"(1 ? (", ") : 0)"}, {"(-(-(", ")))"},
			{"((0, (", ")))"},
		}
		pr := pairs[c.rng.Intn(len(pairs))]
		return pr[0], pr[1]
	}
}

func (c *SimClient) replacementFor(k cast.NodeKind) string {
	switch k {
	case cast.KindIntegerLiteral, cast.KindCharLiteral:
		return fmt.Sprintf("%d", c.rng.Intn(256))
	case cast.KindFloatingLiteral:
		return "1.5"
	case cast.KindStringLiteral:
		return "\"mut\""
	default:
		return "0"
	}
}

func (c *SimClient) insertionFor(k cast.NodeKind) string {
	switch k {
	case cast.KindCompoundStmt, cast.KindIfStmt, cast.KindWhileStmt,
		cast.KindForStmt, cast.KindDoStmt, cast.KindSwitchStmt:
		return " ;"
	case cast.KindVarDecl:
		return " /* added */"
	default:
		return " + 0"
	}
}

// injectFaults seeds the tentative implementation with the calibrated
// defect mix.
func (c *SimClient) injectFaults(prog *mutdsl.Program) {
	r := c.rng
	if r.Float64() < c.rates.Syntax {
		prog.SyntaxErr = syntaxErrors[r.Intn(len(syntaxErrors))]
		c.tele.fault("syntax")
	}
	if r.Float64() < c.rates.Hang {
		prog.HangBug = true
		c.tele.fault("hang")
	}
	if r.Float64() < c.rates.Crash {
		prog.CrashBug = true
		c.tele.fault("crash")
	}
	if r.Float64() < c.rates.NoOutput {
		prog.NoOutputBug = true
		c.tele.fault("no-output")
	}
	if r.Float64() < c.rates.NoRewrite {
		prog.NoRewriteBug = true
		c.tele.fault("no-rewrite")
	}
	if r.Float64() < c.rates.BadMutant {
		prog.BadMutantBug = true
		c.tele.fault("bad-mutant")
	}
}

var syntaxErrors = []string{
	"use of undeclared identifier 'TheFunctions'",
	"no member named 'getReturnTypeSourceRange' in 'FunctionDecl'",
	"expected ';' after expression",
	"cannot initialize 'SourceRange' with an rvalue of type 'SourceLocation'",
	"no matching function for call to 'ReplaceText'",
	"use of undeclared identifier 'randElement'",
}

// GenerateTests produces compilable C programs that contain the mutator's
// target structure ("Generate test cases for which the mutator can be
// applied").
func (c *SimClient) GenerateTests(inv Invention, n int, p Params) ([]string, Usage, error) {
	usage := Usage{
		PromptTokens:     300 + c.rng.Intn(120),
		CompletionTokens: int(c.lognormal(float64(170*n), 0.3, 120, 2200)),
	}
	usage.Wait = c.waitFor(usage.CompletionTokens)
	if c.throttled() {
		c.tele.record("generate-tests", StageTestGen, usage, ErrThrottled)
		return nil, usage, ErrThrottled
	}
	c.tele.record("generate-tests", StageTestGen, usage, nil)
	var tests []string
	for i := 0; i < n; i++ {
		if c.rng.Float64() < 0.12 {
			// The model occasionally emits a generic program that lacks
			// the requested structure — which is exactly what exposes
			// missing-emptiness-check crashes (goal #3).
			tests = append(tests, fmt.Sprintf(
				"int main(void) {\n    return %d;\n}\n", c.rng.Intn(100)))
			continue
		}
		tests = append(tests, testProgramFor(inv.TargetKind, i))
	}
	return tests, usage, nil
}

// Fix repairs the unmet goal reported by the validation loop. Hang bugs
// resist repair — the paper reports zero goal-#2 fixes and names hangs as
// a failure mode LLMs fall short on.
func (c *SimClient) Fix(prog *mutdsl.Program, goal int, feedback string, p Params) (*mutdsl.Program, Usage, error) {
	usage := Usage{
		PromptTokens:     900 + c.rng.Intn(400) + len(feedback)/3,
		CompletionTokens: int(c.lognormal(650, 0.5, 150, 2000)),
	}
	usage.Wait = c.waitFor(usage.CompletionTokens)
	if c.throttled() {
		c.tele.record("fix", StageBugFix, usage, ErrThrottled)
		return nil, usage, ErrThrottled
	}
	c.tele.record("fix", StageBugFix, usage, nil)
	fixed := prog.Clone()
	switch goal {
	case 1:
		fixed.SyntaxErr = ""
		// Rewriting the code sometimes introduces a fresh compile error —
		// the reason goal-#1 fixes dominate Table 1.
		if c.rng.Float64() < c.rates.RepeatSyntax {
			next := syntaxErrors[c.rng.Intn(len(syntaxErrors))]
			if next == prog.SyntaxErr {
				next = next + " (round 2)"
			}
			fixed.SyntaxErr = next
			c.tele.fault("syntax-repeat")
		}
	case 2:
		// Hangs resist repair entirely — the paper reports zero goal-#2
		// fixes and identifies hang bugs as beyond current LLMs.
	case 3:
		fixed.CrashBug = false
	case 4:
		fixed.NoOutputBug = false
	case 5:
		// The usual root cause is an over-restrictive applicability
		// check; the model relaxes it.
		fixed.NoRewriteBug = false
		fixed.RequireSideEffectFree = false
	case 6:
		// Adding the missing checks usually works; when the rewrite
		// itself is broken the model sometimes rewrites it wholesale.
		if c.rng.Float64() < 0.85 {
			fixed.BadMutantBug = false
		}
		if c.rng.Float64() < 0.5 {
			fixed.Steps = mutdsl.SafeStepsFor(fixed.TargetKind)
		}
	}
	return fixed, usage, nil
}

// Rates exposes the calibration (for tests).
func (c *SimClient) Rates() FaultRates { return c.rates }
