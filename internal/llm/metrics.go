package llm

import "github.com/icsnju/metamut-go/internal/obs"

// RegisterMetrics pre-registers the LLM-client families so snapshots
// (and the METRICS.md schema test) see them before the first call.
// Must stay in sync with the inline sites in llm.go.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("llm_calls_total", "method", "result")
	reg.Counter("llm_tokens", "stage")
	reg.Counter("llm_tokens_saved", "goal")
	reg.Counter("llm_faults_total", "class")
	reg.Histogram("llm_wait_seconds", nil, "stage")
}
