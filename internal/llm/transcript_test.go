package llm

import (
	"strings"
	"testing"
)

func TestRecorderCapturesPipeline(t *testing.T) {
	rec := NewRecorder(NewSimClientWithRates(1, FaultRates{}))
	p := DefaultParams()
	inv, _, err := rec.Invent(Actions, Structures, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := rec.Synthesize(inv, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rec.GenerateTests(inv, 3, p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rec.Fix(prog, 6, "mutant fails to compile", p); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 4 {
		t.Fatalf("recorded %d entries, want 4", rec.Len())
	}
	kinds := []string{"invent", "synthesize", "tests", "fix"}
	for i, e := range rec.Entries() {
		if e.Kind != kinds[i] {
			t.Errorf("entry %d kind = %s, want %s", i, e.Kind, kinds[i])
		}
		if e.Usage.TotalTokens() == 0 {
			t.Errorf("entry %d missing usage", i)
		}
	}
	total := rec.TotalUsage()
	if total.TotalTokens() == 0 || total.Wait == 0 {
		t.Error("total usage empty")
	}
	log := rec.Render()
	for _, want := range []string{"invent", "synthesize", "goal #6", inv.Name} {
		if !strings.Contains(log, want) {
			t.Errorf("rendered log missing %q:\n%s", want, log)
		}
	}
}

func TestRecorderRecordsErrors(t *testing.T) {
	rates := DefaultFaultRates()
	rates.APIError = 1.0 // every call throttled
	rec := NewRecorder(NewSimClientWithRates(2, rates))
	_, _, err := rec.Invent(Actions, Structures, nil, DefaultParams())
	if err == nil {
		t.Fatal("expected throttling")
	}
	if rec.Len() != 1 || rec.Entries()[0].Err == nil {
		t.Error("error not recorded")
	}
	if !strings.Contains(rec.Render(), "ERROR") {
		t.Error("rendered log missing error marker")
	}
}
