package llm

import (
	"fmt"

	"github.com/icsnju/metamut-go/internal/cast"
)

// testProgramFor emits a small compilable C program guaranteed to contain
// the given structure, standing in for the LLM's test-case generation —
// the paper found GPT-4 reliably produces such snippets.
func testProgramFor(k cast.NodeKind, variant int) string {
	v := variant % 3
	switch k {
	case cast.KindIfStmt:
		return fmt.Sprintf(`
int pick%d(int a, int b) {
    if (a > b) { return a - b; } else { return b - a; }
}
int main(void) { return pick%d(%d, 4); }
`, v, v, v+1)
	case cast.KindWhileStmt:
		return fmt.Sprintf(`
int count%d(int n) {
    int c = 0;
    while (n > 0) { n = n / 2; c++; }
    return c;
}
int main(void) { return count%d(%d); }
`, v, v, 10+v)
	case cast.KindDoStmt:
		return fmt.Sprintf(`
int spin%d(int n) {
    int c = 0;
    do { c += n; n--; } while (n > 0);
    return c;
}
int main(void) { return spin%d(%d); }
`, v, v, 3+v)
	case cast.KindForStmt:
		return fmt.Sprintf(`
int total%d(void) {
    int i;
    int s = 0;
    for (i = 0; i < %d; i++) { s += i * i; }
    return s;
}
int main(void) { return total%d(); }
`, v, 8+v, v)
	case cast.KindSwitchStmt, cast.KindCaseStmt:
		return fmt.Sprintf(`
int route%d(int x) {
    switch (x %% 3) {
    case 0: return 10;
    case 1: return 20;
    default: return 30;
    }
}
int main(void) { return route%d(%d); }
`, v, v, v+2)
	case cast.KindGotoStmt, cast.KindLabelStmt:
		return fmt.Sprintf(`
int hop%d(int n) {
    int acc = 0;
again:
    acc += n;
    n--;
    if (n > 0) goto again;
    return acc;
}
int main(void) { return hop%d(%d); }
`, v, v, 3+v)
	case cast.KindReturnStmt, cast.KindFunctionDecl, cast.KindParmVarDecl:
		return fmt.Sprintf(`
int doubleIt%d(int x) { return x * 2; }
int addOne%d(int x) { return x + 1; }
int main(void) { return doubleIt%d(addOne%d(%d)); }
`, v, v, v, v, v+1)
	case cast.KindVarDecl:
		return fmt.Sprintf(`
int gv%d = %d;
int main(void) {
    int a = 3;
    int b = a + gv%d;
    int c = b * 2;
    return c;
}
`, v, 5+v, v)
	case cast.KindCallExpr:
		return fmt.Sprintf(`
int helper%d(int a, int b) { return a + b; }
int main(void) {
    int x = helper%d(1, 2);
    x += helper%d(x, 3);
    return x;
}
`, v, v, v)
	case cast.KindArraySubscriptExpr:
		return fmt.Sprintf(`
int arr%d[8];
int main(void) {
    int i;
    for (i = 0; i < 8; i++) { arr%d[i] = i; }
    return arr%d[3] + arr%d[5];
}
`, v, v, v, v)
	case cast.KindMemberExpr, cast.KindFieldDecl:
		return fmt.Sprintf(`
struct pt%d { int x; int y; };
int main(void) {
    struct pt%d p;
    p.x = %d;
    p.y = p.x * 2;
    return p.x + p.y;
}
`, v, v, v+1)
	case cast.KindCastExpr:
		return fmt.Sprintf(`
int main(void) {
    double d = %d.5;
    int i = (int)d;
    long l = (long)i + (long)d;
    return (int)l;
}
`, v+1)
	case cast.KindConditionalExpr:
		return fmt.Sprintf(`
int main(void) {
    int a = %d;
    int b = a > 2 ? a * 2 : a + 1;
    return b > 5 ? b - 5 : b;
}
`, v+1)
	case cast.KindStringLiteral:
		return fmt.Sprintf(`
int main(void) {
    const char *s = "hello%d";
    return (int)strlen(s);
}
`, v)
	case cast.KindCharLiteral:
		return fmt.Sprintf(`
int main(void) {
    char c = 'a';
    char d = 'z';
    return (d - c) + %d;
}
`, v)
	case cast.KindFloatingLiteral:
		return fmt.Sprintf(`
int main(void) {
    double d = 1.5 * %d.0 + 0.25;
    return d > 2.0 ? 1 : 0;
}
`, v+1)
	case cast.KindUnaryOperator:
		return fmt.Sprintf(`
int main(void) {
    int a = %d;
    int b = -a;
    int c = !b;
    int d = ~c;
    return a + b + c + d;
}
`, v+1)
	case cast.KindInitListExpr:
		return fmt.Sprintf(`
int main(void) {
    int a[4] = {1, 2, 3, %d};
    return a[0] + a[3];
}
`, v+4)
	case cast.KindCompoundStmt:
		return fmt.Sprintf(`
int main(void) {
    int x = %d;
    { int y = x + 1; x = y * 2; }
    { x = x - 1; }
    return x;
}
`, v+1)
	default: // BinaryOperator, IntegerLiteral and anything else
		return fmt.Sprintf(`
int main(void) {
    int a = %d + 4;
    int b = a * 3 - 2;
    int c = (a << 1) ^ (b >> 1);
    return a + b + c;
}
`, v+1)
	}
}
