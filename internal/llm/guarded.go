package llm

import (
	"errors"

	"github.com/icsnju/metamut-go/internal/mutdsl"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/resil"
)

// Guarded wraps a Client behind a circuit breaker: once the inner model
// throws a throttle storm (consecutive ErrThrottled failures reaching the
// breaker's threshold), further calls are denied up-front with
// resil.ErrOpen — no tokens are spent, no wait is booked — until the
// breaker's cooldown admits a half-open probe. Successful calls close it
// again. Non-throttle errors pass through without counting as breaker
// failures.
type Guarded struct {
	Inner   Client
	Breaker *resil.Breaker
}

// Guard wraps inner behind b.
func Guard(inner Client, b *resil.Breaker) *Guarded {
	return &Guarded{Inner: inner, Breaker: b}
}

// Instrument forwards the registry to the wrapped client.
func (g *Guarded) Instrument(reg *obs.Registry) {
	Instrument(g.Inner, reg)
}

// report feeds the breaker: nil is a success, a throttle is a failure,
// anything else (e.g. a content fault) leaves the breaker untouched.
func (g *Guarded) report(err error) {
	switch {
	case err == nil:
		g.Breaker.Success()
	case errors.Is(err, ErrThrottled):
		g.Breaker.Failure()
	}
}

func (g *Guarded) Invent(actions, structures, priorNames []string, p Params) (Invention, Usage, error) {
	if !g.Breaker.Allow() {
		return Invention{}, Usage{}, resil.ErrOpen
	}
	inv, usage, err := g.Inner.Invent(actions, structures, priorNames, p)
	g.report(err)
	return inv, usage, err
}

func (g *Guarded) Synthesize(inv Invention, p Params) (*mutdsl.Program, Usage, error) {
	if !g.Breaker.Allow() {
		return nil, Usage{}, resil.ErrOpen
	}
	prog, usage, err := g.Inner.Synthesize(inv, p)
	g.report(err)
	return prog, usage, err
}

func (g *Guarded) GenerateTests(inv Invention, n int, p Params) ([]string, Usage, error) {
	if !g.Breaker.Allow() {
		return nil, Usage{}, resil.ErrOpen
	}
	tests, usage, err := g.Inner.GenerateTests(inv, n, p)
	g.report(err)
	return tests, usage, err
}

func (g *Guarded) Fix(prog *mutdsl.Program, goal int, feedback string, p Params) (*mutdsl.Program, Usage, error) {
	if !g.Breaker.Allow() {
		return nil, Usage{}, resil.ErrOpen
	}
	fixed, usage, err := g.Inner.Fix(prog, goal, feedback, p)
	g.report(err)
	return fixed, usage, err
}
