package llm

import (
	"testing"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/mutdsl"
)

func TestInventAvoidsDuplicates(t *testing.T) {
	c := NewSimClientWithRates(1, FaultRates{}) // no API errors
	var prior []string
	dups := 0
	for i := 0; i < 120; i++ {
		inv, usage, err := c.Invent(Actions, Structures, prior, DefaultParams())
		if err != nil {
			t.Fatalf("invent: %v", err)
		}
		if usage.TotalTokens() == 0 || usage.Wait == 0 {
			t.Fatal("missing usage accounting")
		}
		for _, p := range prior {
			if p == inv.Name {
				dups++
			}
		}
		prior = append(prior, inv.Name)
	}
	// With zero residual-duplicate rate and sampling hints, duplicates
	// should be rare even over 120 draws from a finite space.
	if dups > 12 {
		t.Errorf("%d duplicates in 120 inventions", dups)
	}
}

func TestInventProducesCreativeMutators(t *testing.T) {
	c := NewSimClientWithRates(7, FaultRates{})
	creative := 0
	for i := 0; i < 200; i++ {
		inv, _, err := c.Invent(Actions, Structures, nil, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if inv.Creative {
			creative++
		}
	}
	// The paper observed 33/118 (~28%) creative inventions.
	if creative < 20 || creative > 100 {
		t.Errorf("creative inventions = %d/200, want roughly 28%%", creative)
	}
}

func TestSynthesizeYieldsCompilableTemplates(t *testing.T) {
	c := NewSimClientWithRates(3, FaultRates{}) // no injected faults
	for i := 0; i < 60; i++ {
		inv, _, err := c.Invent(Actions, Structures, nil, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		prog, _, err := c.Synthesize(inv, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mutdsl.Compile(prog); err != nil {
			t.Errorf("fault-free synthesis does not compile: %v (%+v)", err, prog)
		}
		if prog.Name != inv.Name {
			t.Errorf("program name %q != invention %q", prog.Name, inv.Name)
		}
	}
}

func TestGeneratedTestsContainStructure(t *testing.T) {
	kinds := []cast.NodeKind{
		cast.KindIfStmt, cast.KindWhileStmt, cast.KindForStmt,
		cast.KindSwitchStmt, cast.KindGotoStmt, cast.KindCallExpr,
		cast.KindArraySubscriptExpr, cast.KindMemberExpr,
		cast.KindBinaryOperator, cast.KindCastExpr, cast.KindDoStmt,
		cast.KindStringLiteral, cast.KindConditionalExpr,
	}
	for _, k := range kinds {
		for v := 0; v < 3; v++ {
			src := testProgramFor(k, v)
			tu, err := cast.ParseAndCheck(src)
			if err != nil {
				t.Fatalf("test for %s invalid: %v\n%s", k, err, src)
			}
			if len(cast.CollectKind(tu, k)) == 0 {
				t.Errorf("test for %s does not contain a %s:\n%s", k, k, src)
			}
		}
	}
}

func TestFaultInjectionRates(t *testing.T) {
	c := NewSimClient(11)
	n := 400
	syntax, bad := 0, 0
	for i := 0; i < n; i++ {
		inv, _, err := c.Invent(Actions, Structures, nil, DefaultParams())
		if err != nil {
			continue
		}
		prog, _, err := c.Synthesize(inv, DefaultParams())
		if err != nil {
			continue
		}
		if prog.SyntaxErr != "" {
			syntax++
		}
		if prog.BadMutantBug {
			bad++
		}
	}
	rates := c.Rates()
	if f := float64(syntax) / float64(n); f < rates.Syntax-0.12 || f > rates.Syntax+0.12 {
		t.Errorf("syntax fault rate = %.2f, want ~%.2f", f, rates.Syntax)
	}
	if f := float64(bad) / float64(n); f < rates.BadMutant-0.12 || f > rates.BadMutant+0.12 {
		t.Errorf("bad-mutant fault rate = %.2f, want ~%.2f", f, rates.BadMutant)
	}
}

func TestFixRepairsReportedGoal(t *testing.T) {
	c := NewSimClientWithRates(2, FaultRates{}) // deterministic repairs
	prog := &mutdsl.Program{
		Name: "X", Description: "d", TargetKind: cast.KindBinaryOperator,
		Steps:       []mutdsl.Step{{Op: mutdsl.OpWrapText, Pre: "(", Post: ")"}},
		SyntaxErr:   "boom",
		CrashBug:    true,
		NoOutputBug: true,
	}
	fixed, _, err := c.Fix(prog, 1, "compile error", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if fixed.SyntaxErr != "" {
		t.Error("goal-1 fix did not clear the syntax error (RepeatSyntax=0)")
	}
	if !fixed.CrashBug || !fixed.NoOutputBug {
		t.Error("goal-1 fix must not silently clear other defects")
	}
	fixed2, _, _ := c.Fix(fixed, 3, "crash", DefaultParams())
	if fixed2.CrashBug {
		t.Error("goal-3 fix did not clear the crash bug")
	}
	// Hang bugs are never repaired.
	prog.HangBug = true
	fixedH, _, _ := c.Fix(prog, 2, "hang", DefaultParams())
	if !fixedH.HangBug {
		t.Error("goal-2 fix repaired a hang; the paper reports zero such fixes")
	}
}

func TestLatencyWithinTable3Bounds(t *testing.T) {
	c := NewSimClient(13)
	for i := 0; i < 200; i++ {
		inv, usage, err := c.Invent(Actions, Structures, nil, DefaultParams())
		_ = inv
		if err != nil {
			continue
		}
		secs := usage.Wait.Seconds()
		if secs < 11 || secs > 123 {
			t.Fatalf("wait %f s outside Table 3's 11-123s", secs)
		}
	}
}

func TestStructureKindCoversVocabulary(t *testing.T) {
	for _, s := range Structures {
		if _, ok := structureKind[s]; !ok {
			t.Errorf("structure %q has no node-kind mapping", s)
		}
	}
}

func TestCompoundInventionExtension(t *testing.T) {
	c := NewSimClientWithRates(21, FaultRates{})
	p := DefaultParams()
	p.AllowCompound = true
	compound := 0
	for i := 0; i < 150; i++ {
		inv, _, err := c.Invent(Actions, Structures, nil, p)
		if err != nil {
			t.Fatal(err)
		}
		if inv.SecondAction == "" {
			continue
		}
		compound++
		if inv.SecondAction == inv.Action {
			t.Errorf("compound invention repeats its action: %+v", inv)
		}
		prog, _, err := c.Synthesize(inv, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(prog.Steps) != 2 {
			t.Errorf("compound synthesis has %d steps, want 2", len(prog.Steps))
		}
	}
	if compound == 0 {
		t.Fatal("AllowCompound never produced a two-action invention")
	}
	// Without the extension flag, no compound inventions appear.
	p.AllowCompound = false
	for i := 0; i < 100; i++ {
		inv, _, err := c.Invent(Actions, Structures, nil, p)
		if err != nil {
			t.Fatal(err)
		}
		if inv.SecondAction != "" {
			t.Fatal("compound invention without AllowCompound")
		}
	}
}
