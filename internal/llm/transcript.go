package llm

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/icsnju/metamut-go/internal/mutdsl"
	"github.com/icsnju/metamut-go/internal/obs"
)

// TranscriptEntry is one recorded model interaction.
type TranscriptEntry struct {
	Seq   int
	Kind  string // "invent" | "synthesize" | "tests" | "fix"
	Query string // condensed request description
	Reply string // condensed response description
	Usage Usage
	Err   error
}

// Recorder wraps a Client and records every interaction — the analogue
// of the chat histories the paper publishes alongside the mutators
// ("The mutator generation logs, including the chat history between
// MetaMut and GPT-4, are available in our repository").
type Recorder struct {
	Inner Client

	mu      sync.Mutex
	entries []TranscriptEntry
}

// NewRecorder wraps inner.
func NewRecorder(inner Client) *Recorder { return &Recorder{Inner: inner} }

func (r *Recorder) record(kind, query, reply string, usage Usage, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, TranscriptEntry{
		Seq: len(r.entries), Kind: kind, Query: query, Reply: reply,
		Usage: usage, Err: err,
	})
}

// Entries returns a copy of the transcript.
func (r *Recorder) Entries() []TranscriptEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TranscriptEntry(nil), r.entries...)
}

// Len returns the number of recorded interactions.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// TotalUsage sums token and wait accounting across the transcript.
func (r *Recorder) TotalUsage() Usage {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total Usage
	for _, e := range r.entries {
		total.PromptTokens += e.Usage.PromptTokens
		total.CompletionTokens += e.Usage.CompletionTokens
		total.Wait += e.Usage.Wait
	}
	return total
}

// Render prints the transcript as a readable chat log.
func (r *Recorder) Render() string {
	var sb strings.Builder
	for _, e := range r.Entries() {
		fmt.Fprintf(&sb, "[%03d] %-10s >> %s\n", e.Seq, e.Kind, e.Query)
		if e.Err != nil {
			fmt.Fprintf(&sb, "      %-10s << ERROR: %v\n", "", e.Err)
		} else {
			fmt.Fprintf(&sb, "      %-10s << %s\n", "", e.Reply)
		}
		fmt.Fprintf(&sb, "      tokens=%d wait=%s\n",
			e.Usage.TotalTokens(), e.Usage.Wait.Round(time.Second))
	}
	return sb.String()
}

// Invent implements Client.
func (r *Recorder) Invent(actions, structures, priorNames []string, p Params) (Invention, Usage, error) {
	inv, usage, err := r.Inner.Invent(actions, structures, priorNames, p)
	reply := ""
	if err == nil {
		reply = inv.Name + ": " + truncate(inv.Description, 80)
	}
	r.record("invent",
		fmt.Sprintf("invent a mutator (%d prior names as sampling hints)", len(priorNames)),
		reply, usage, err)
	return inv, usage, err
}

// Synthesize implements Client.
func (r *Recorder) Synthesize(inv Invention, p Params) (*mutdsl.Program, Usage, error) {
	prog, usage, err := r.Inner.Synthesize(inv, p)
	reply := ""
	if err == nil {
		reply = fmt.Sprintf("implementation targeting %s with %d step(s)",
			prog.TargetKind, len(prog.Steps))
	}
	r.record("synthesize", "fill the mutator template for "+inv.Name,
		reply, usage, err)
	return prog, usage, err
}

// GenerateTests implements Client.
func (r *Recorder) GenerateTests(inv Invention, n int, p Params) ([]string, Usage, error) {
	tests, usage, err := r.Inner.GenerateTests(inv, n, p)
	reply := ""
	if err == nil {
		reply = fmt.Sprintf("%d test programs", len(tests))
	}
	r.record("tests",
		fmt.Sprintf("generate %d test cases for %s", n, inv.Name),
		reply, usage, err)
	return tests, usage, err
}

// Fix implements Client.
func (r *Recorder) Fix(prog *mutdsl.Program, goal int, feedback string, p Params) (*mutdsl.Program, Usage, error) {
	fixed, usage, err := r.Inner.Fix(prog, goal, feedback, p)
	reply := ""
	if err == nil {
		reply = "revised implementation"
	}
	r.record("fix",
		fmt.Sprintf("goal #%d unmet: %s", goal, truncate(feedback, 70)),
		reply, usage, err)
	return fixed, usage, err
}

func truncate(s string, n int) string {
	s = strings.ReplaceAll(s, "\n", " ")
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// Instrument forwards the observability registry to the wrapped
// client, so telemetry reaches the SimClient behind a Recorder.
func (r *Recorder) Instrument(reg *obs.Registry) {
	Instrument(r.Inner, reg)
}
