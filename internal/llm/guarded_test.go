package llm

import (
	"errors"
	"testing"

	"github.com/icsnju/metamut-go/internal/resil"
)

func TestGuardedBreakerOpensOnThrottleStorm(t *testing.T) {
	inner := NewSimClientWithRates(1, FaultRates{})
	b := resil.NewBreaker(resil.BreakerConfig{FailureThreshold: 3, Cooldown: 3}, nil)
	g := Guard(inner, b)

	// Healthy calls pass through and keep the breaker closed.
	if _, _, err := g.Invent(Actions, Structures, nil, DefaultParams()); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}
	if b.State() != resil.Closed {
		t.Fatalf("state = %v, want Closed", b.State())
	}

	// Feed the breaker a throttle storm directly (SimClient faults are
	// probabilistic, so drive Failure via report()).
	for i := 0; i < 3; i++ {
		g.report(ErrThrottled)
	}
	if b.State() != resil.Open {
		t.Fatalf("state after storm = %v, want Open", b.State())
	}

	// Open breaker denies without touching the inner client.
	if _, _, err := g.Invent(Actions, Structures, nil, DefaultParams()); !errors.Is(err, resil.ErrOpen) {
		t.Fatalf("err = %v, want resil.ErrOpen", err)
	}
	if _, _, err := g.Synthesize(Invention{}, DefaultParams()); !errors.Is(err, resil.ErrOpen) {
		t.Fatalf("Synthesize err = %v, want resil.ErrOpen", err)
	}

	// Cooldown reached: next call is the half-open probe; on success the
	// breaker closes again.
	if _, _, err := g.Invent(Actions, Structures, nil, DefaultParams()); err != nil {
		t.Fatalf("probe call failed: %v", err)
	}
	if b.State() != resil.Closed {
		t.Fatalf("state after probe = %v, want Closed", b.State())
	}
}

func TestGuardedNonThrottleErrorsDontTrip(t *testing.T) {
	b := resil.NewBreaker(resil.BreakerConfig{FailureThreshold: 1, Cooldown: 1}, nil)
	g := Guard(NewSimClientWithRates(1, FaultRates{}), b)
	g.report(errors.New("content fault"))
	if b.State() != resil.Closed {
		t.Fatalf("state = %v, want Closed after non-throttle error", b.State())
	}
}
