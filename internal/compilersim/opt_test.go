package compilersim

import (
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim/ir"
)

// lowered parses src and lowers it to IR without optimization.
func lowered(t *testing.T, src string) *ir.Program {
	t.Helper()
	tu, err := parseChecked(src)
	if err != nil {
		t.Fatalf("front-end: %v", err)
	}
	return GenerateIR(tu, nopTracer(), Features{})
}

// optimize runs the standard pipeline over prog.
func optimize(prog *ir.Program, feats Features) {
	Optimize(prog, StandardPasses(), nopTracer(), feats)
}

// countOps tallies instruction kinds across the program.
func countOps(prog *ir.Program) map[ir.Op]int {
	out := map[ir.Op]int{}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				out[in.Op]++
			}
		}
	}
	return out
}

func TestConstFoldCollapsesConstantArithmetic(t *testing.T) {
	prog := lowered(t, `
int f(void) { return (3 + 4) * 2 - 6; }
int main(void) { return f(); }
`)
	feats := Features{}
	optimize(prog, feats)
	ops := countOps(prog)
	if ops[ir.OpAdd]+ops[ir.OpMul]+ops[ir.OpSub] != 0 {
		t.Errorf("constant arithmetic survived: %v", ops)
	}
	if !feats.Has("opt.folded") {
		t.Error("opt.folded feature not recorded")
	}
}

func TestDeadBranchFolded(t *testing.T) {
	prog := lowered(t, `
int f(int x) {
    if (0) { x = x + 100; }
    return x;
}
int main(void) { return f(1); }
`)
	feats := Features{}
	optimize(prog, feats)
	if !feats.Has("opt.deadbranch") {
		t.Error("constant branch not folded")
	}
	if !feats.Has("opt.deadblock") && !feats.Has("opt.deadinstr") {
		t.Error("dead code not removed after branch folding")
	}
}

func TestAlgebraicSimplification(t *testing.T) {
	prog := lowered(t, `
int f(int x) {
    int a = x + 0;
    int b = x * 1;
    int c = x - x;
    int d = x ^ x;
    return a + b + c + d;
}
int main(void) { return f(5); }
`)
	feats := Features{}
	optimize(prog, feats)
	if feats["opt.simplified"] < 3 {
		t.Errorf("simplified = %d, want >= 3", feats["opt.simplified"])
	}
}

func TestStrengthReduction(t *testing.T) {
	prog := lowered(t, `
int f(int x) { return x * 8; }
int main(void) { return f(3); }
`)
	feats := Features{}
	optimize(prog, feats)
	if !feats.Has("opt.strengthreduced") {
		t.Error("mul-by-8 not strength reduced")
	}
	ops := countOps(prog)
	if ops[ir.OpShl] == 0 {
		t.Error("no shift emitted for x * 8")
	}
}

func TestCSE(t *testing.T) {
	prog := lowered(t, `
int f(int a, int b) {
    int x = a * b + 1;
    int y = a * b + 1;
    return x + y;
}
int main(void) { return f(2, 3); }
`)
	feats := Features{}
	optimize(prog, feats)
	if feats["opt.cse"] == 0 {
		t.Error("common subexpression not eliminated")
	}
}

func TestLoopDetectionAndVectorization(t *testing.T) {
	prog := lowered(t, `
int a[32]; int b[32]; int c[32];
void kernel(void) {
    int i;
    for (i = 0; i < 32; i++) {
        c[i] = a[i] * b[i] + a[i];
    }
}
int main(void) { kernel(); return c[0]; }
`)
	feats := Features{}
	optimize(prog, feats)
	if !feats.Has("opt.loops") {
		t.Fatal("loop not detected")
	}
	if !feats.Has("opt.countedloop") {
		t.Error("counted loop not recognized")
	}
	if !feats.Has("opt.vectorized") {
		t.Errorf("loop not vectorized; feats=%v", FeatureNames(feats))
	}
}

func TestSprintfToStrlen(t *testing.T) {
	prog := lowered(t, `
char buf[64];
int f(void) { return sprintf(buf, "%s", "hello"); }
int main(void) { return f(); }
`)
	feats := Features{}
	optimize(prog, feats)
	if !feats.Has("opt.strlenfold") {
		t.Error("sprintf not folded to strlen")
	}
	// The literal source is NUL-terminated: the bug feature must NOT fire.
	if feats.Has("opt.strlen.unterminated") {
		t.Error("false-positive unterminated-buffer trigger")
	}
	ops := countOps(prog)
	if ops[ir.OpStrLen] == 0 {
		t.Error("no OpStrLen emitted")
	}
}

func TestBackendRegisterPressure(t *testing.T) {
	// A right-deep expression keeps one temp alive per nesting level;
	// depth 12 exceeds the 8-register file.
	src := `
int f(int a, int b) {
    return (a * 2) + ((b * 3) + ((a * 5) + ((b * 7) + ((a * 11) + ((b * 13) +
           ((a * 17) + ((b * 19) + ((a * 23) + ((b * 29) + ((a * 31) + (b * 37)))))))))));
}
int main(void) { return f(3, 4); }
`
	prog := lowered(t, src)
	feats := Features{}
	obj := GenerateCode(prog, nopTracer(), feats)
	if obj.Spills == 0 {
		t.Error("no spills under heavy register pressure")
	}
	if obj.Funcs != 2 || obj.TextSize == 0 {
		t.Errorf("object: %d funcs, %d bytes", obj.Funcs, obj.TextSize)
	}
}

func TestBackendJumpTable(t *testing.T) {
	prog := lowered(t, `
int f(int x) {
    switch (x) {
    case 0: return 1;
    case 1: return 2;
    case 2: return 3;
    case 3: return 4;
    case 4: return 5;
    case 5: return 6;
    default: return 0;
    }
}
int main(void) { return f(3); }
`)
	feats := Features{}
	GenerateCode(prog, nopTracer(), feats)
	if !feats.Has("be.jumptable") {
		t.Error("dense switch did not become a jump table")
	}
}

func TestOptimizerPreservesTermination(t *testing.T) {
	// After full optimization every non-empty block keeps a terminator
	// and successor indices stay in range.
	prog := lowered(t, validProgram)
	optimize(prog, Features{})
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			if len(b.Instrs) > 0 && b.Terminator() == nil {
				t.Errorf("%s block %d lost its terminator", f.Name, b.ID)
			}
			for _, s := range b.Succs {
				if s < 0 || s >= len(f.Blocks) {
					t.Errorf("%s block %d successor %d out of range", f.Name, b.ID, s)
				}
			}
		}
	}
}
