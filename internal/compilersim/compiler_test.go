package compilersim

import (
	"strings"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim/ir"
)

const validProgram = `
int acc;
int work(int a, int b) {
    int i;
    int total = 0;
    for (i = 0; i < 10; i++) {
        total += a * b + i;
    }
    if (total > 50) { total -= 25; } else { total += 25; }
    while (total % 3) { total--; }
    switch (total & 3) {
    case 0: total += 1; break;
    case 1: total += 2; break;
    default: total += 3; break;
    }
    return total;
}
int main(void) {
    acc = work(3, 4);
    return acc & 0xff;
}
`

func TestCompileValidProgram(t *testing.T) {
	for _, profile := range []string{"gcc", "clang"} {
		c := New(profile, 14)
		res := c.Compile(validProgram, DefaultOptions())
		if res.Crash != nil {
			t.Fatalf("%s: unexpected crash %v", profile, res.Crash)
		}
		if !res.OK {
			t.Fatalf("%s: compilation rejected: %v", profile, res.Diagnostics)
		}
		if res.Object == nil || len(res.Object.Instrs) == 0 {
			t.Fatalf("%s: no code generated", profile)
		}
		if res.Coverage.Count() == 0 {
			t.Fatalf("%s: no coverage recorded", profile)
		}
	}
}

func TestCompileInvalidProgram(t *testing.T) {
	c := New("gcc", 14)
	res := c.Compile("int f( {", DefaultOptions())
	if res.OK {
		t.Fatal("invalid program accepted")
	}
	if len(res.Diagnostics) == 0 {
		t.Fatal("no diagnostics for invalid program")
	}
	if res.Coverage.Count() == 0 {
		t.Fatal("invalid input should still produce front-end coverage")
	}
}

func TestSemanticErrorProgram(t *testing.T) {
	c := New("clang", 18)
	res := c.Compile("int f(void) { return undeclared_name_xyz; }", DefaultOptions())
	if res.OK {
		t.Fatal("semantically invalid program accepted")
	}
	found := false
	for _, d := range res.Diagnostics {
		if strings.Contains(d, "undeclared") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing undeclared diagnostic: %v", res.Diagnostics)
	}
}

func TestCoverageGrowsWithInputDiversity(t *testing.T) {
	c := New("gcc", 14)
	r1 := c.Compile("int f(void) { return 1; }", DefaultOptions())
	r2 := c.Compile(validProgram, DefaultOptions())
	if r2.Coverage.Count() <= r1.Coverage.Count() {
		t.Errorf("richer program should cover more edges: %d vs %d",
			r2.Coverage.Count(), r1.Coverage.Count())
	}
}

func TestCoverageDeterministic(t *testing.T) {
	c := New("gcc", 14)
	r1 := c.Compile(validProgram, DefaultOptions())
	r2 := c.Compile(validProgram, DefaultOptions())
	if r1.Coverage.Count() != r2.Coverage.Count() {
		t.Fatal("coverage not deterministic")
	}
	if r1.Coverage.HasNew(r2.Coverage) {
		t.Fatal("second identical compile covered new edges")
	}
}

func TestOptLevelsChangeCoverage(t *testing.T) {
	c := New("gcc", 14)
	r0 := c.Compile(validProgram, Options{OptLevel: 0})
	r2 := c.Compile(validProgram, Options{OptLevel: 2})
	if !r0.OK || !r2.OK {
		t.Fatal("compiles failed")
	}
	if r2.Coverage.Count() <= r0.Coverage.Count() {
		t.Errorf("-O2 should cover optimizer edges beyond -O0: %d vs %d",
			r2.Coverage.Count(), r0.Coverage.Count())
	}
}

// TestFrontEndBugOnInvalidInput verifies error-recovery defects fire for
// garbage inputs — the AFL++ discovery channel.
func TestFrontEndBugOnInvalidInput(t *testing.T) {
	c := New("gcc", 14)
	deep := strings.Repeat("(", 45) + "1" + strings.Repeat(")", 45)
	res := c.Compile("int f(void) { return "+deep+"; }", DefaultOptions())
	if res.Crash == nil {
		t.Fatal("paren-depth defect did not fire")
	}
	if res.Crash.Component != FrontEnd {
		t.Fatalf("crash in %v, want Front-End", res.Crash.Component)
	}
	if res.Crash.Signature() == "" {
		t.Fatal("empty crash signature")
	}
}

// TestStrlenOptBug reproduces the paper's verify_range crash: sprintf of
// a const (non-NUL-guaranteed) buffer into itself under -O2.
func TestStrlenOptBug(t *testing.T) {
	src := `
char const volatile buffer[32];
int test4(void) { return sprintf(buffer, "%s", buffer); }
int main(void) { if (test4() != 3) abort(); return 0; }
`
	c := New("gcc", 14)
	res := c.Compile(src, DefaultOptions())
	if res.Crash == nil {
		t.Fatalf("strlen-opt defect did not fire; feats=%v", FeatureNames(res.Feats))
	}
	if res.Crash.Component != Opt {
		t.Fatalf("crash in %v, want Opt", res.Crash.Component)
	}
	if res.Crash.Frames[0] != "verify_range" {
		t.Fatalf("frames = %v", res.Crash.Frames)
	}
	// At -O0 the strlen pass does not run: no crash.
	res0 := c.Compile(src, Options{OptLevel: 0})
	if res0.Crash != nil {
		t.Fatalf("-O0 must not reach the optimizer defect, got %v", res0.Crash)
	}
}

// TestRet2VBug reproduces Clang #63762's shape: a void function with
// empty labels and no returns.
func TestRet2VBug(t *testing.T) {
	src := `
void foo(int x, int y) {
    if (x > y) goto gt;
    goto lt;
gt: ;
lt: ;
}
int main(void) { foo(1, 2); return 0; }
`
	c := New("clang", 18)
	res := c.Compile(src, DefaultOptions())
	if res.Crash == nil {
		t.Fatalf("Ret2V defect did not fire; feats=%v", FeatureNames(res.Feats))
	}
	if res.Crash.Component != IRGen {
		t.Fatalf("crash in %v, want IR", res.Crash.Component)
	}
}

func TestHangReported(t *testing.T) {
	// GCC #111820 shape: zero-initialized decremented induction over a
	// vectorizable body.
	src := `
int r_0; int r1; int r2; int r3; int r4; int r5;
void f(void) {
    int n = 0;
    while (--n) {
        r_0 += r5 * n; r1 += r_0 * n; r2 += r1 * n;
        r3 += r2 * n; r4 += r3 * n; r5 += r4 * n;
    }
}
int main(void) { f(); return 0; }
`
	c := New("gcc", 14)
	res := c.Compile(src, DefaultOptions())
	if res.Crash == nil || !res.Hang {
		t.Fatalf("vectorizer hang did not fire; crash=%v feats=%v",
			res.Crash, FeatureNames(res.Feats))
	}
	// Disabling the vectorizer (-fno-tree-vectorize) avoids the hang.
	res2 := c.Compile(src, Options{OptLevel: 2, DisabledPasses: []string{"loopvec"}})
	if res2.Hang {
		t.Fatal("hang fired with vectorizer disabled")
	}
}

func TestBugCorpusShape(t *testing.T) {
	gcc := New("gcc", 14)
	clang := New("clang", 18)
	gs, cs := gcc.BugStats(), clang.BugStats()
	if gs["Front-End"] != 16 || gs["IR"] != 18 || gs["Opt"] != 14 || gs["Back-End"] != 2 {
		t.Errorf("gcc defect distribution off: %v", gs)
	}
	if cs["Front-End"] != 20 || cs["IR"] != 18 || cs["Opt"] != 5 || cs["Back-End"] != 9 {
		t.Errorf("clang defect distribution off: %v", cs)
	}
	// Assertion failures must dominate (85% in Table 6).
	for _, s := range []map[string]int{gs, cs} {
		if s["Assertion Failure"] <= s["Segmentation Fault"]+s["Hang"] {
			t.Errorf("assertion failures should dominate: %v", s)
		}
	}
	// All signatures must be unique (dedup key).
	seen := map[string]bool{}
	for _, b := range append(gcc.Bugs(), clang.Bugs()...) {
		sig := b.Frames[0] + "|" + b.Frames[1]
		if seen[sig] {
			t.Errorf("duplicate crash signature %q", sig)
		}
		seen[sig] = true
	}
}

func TestIRGeneration(t *testing.T) {
	c := New("gcc", 14)
	res := c.Compile(validProgram, Options{OptLevel: 0})
	if !res.OK {
		t.Fatalf("compile failed: %v", res.Diagnostics)
	}
	// Direct IR inspection via GenerateIR.
	tu, err := parseChecked(validProgram)
	if err != nil {
		t.Fatal(err)
	}
	prog := GenerateIR(tu, nopTracer(), Features{})
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(prog.Funcs))
	}
	work := prog.FuncByName("work")
	if work == nil {
		t.Fatal("work not lowered")
	}
	if work.NParams != 2 {
		t.Errorf("work params = %d", work.NParams)
	}
	if len(work.Blocks) < 8 {
		t.Errorf("work blocks = %d, want >= 8 (loop+if+while+switch)", len(work.Blocks))
	}
	// All successor references must be in range, every block terminated.
	for _, b := range work.Blocks {
		for _, s := range b.Succs {
			if s < 0 || s >= len(work.Blocks) {
				t.Errorf("block %d has out-of-range successor %d", b.ID, s)
			}
		}
		if len(b.Instrs) > 0 && b.Terminator() == nil {
			t.Errorf("block %d not terminated", b.ID)
		}
	}
	_ = ir.OpAdd
}
