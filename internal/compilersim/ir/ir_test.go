package ir

import (
	"strings"
	"testing"
)

func TestOpProperties(t *testing.T) {
	if !OpAdd.IsCommutative() || OpSub.IsCommutative() {
		t.Error("commutativity wrong for add/sub")
	}
	if !OpCmpEQ.IsCompare() || OpAdd.IsCompare() {
		t.Error("compare classification wrong")
	}
	for _, o := range []Op{OpRet, OpBr, OpCondBr, OpSwitch} {
		if !o.IsTerminator() {
			t.Errorf("%v should be a terminator", o)
		}
	}
	for _, o := range []Op{OpStore, OpRet, OpBr, OpCondBr, OpSwitch, OpNop} {
		if o.HasDst() {
			t.Errorf("%v should not define Dst", o)
		}
	}
	if !OpLoad.HasDst() || !OpCall.HasDst() {
		t.Error("load/call must define Dst")
	}
}

func TestFuncBlocksAndTemps(t *testing.T) {
	f := &Func{Name: "f"}
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	if b0.ID != 0 || b1.ID != 1 {
		t.Fatalf("block ids %d %d", b0.ID, b1.ID)
	}
	t0 := f.NewTemp()
	t1 := f.NewTemp()
	if t0 == t1 {
		t.Fatal("temps not unique")
	}
	b0.Instrs = append(b0.Instrs, Instr{Op: OpConst, Dst: t0, A: Const(5)})
	b0.Instrs = append(b0.Instrs, Instr{Op: OpBr})
	b0.Succs = []int{1}
	b1.Instrs = append(b1.Instrs, Instr{Op: OpRet, A: t0})
	if f.InstrCount() != 3 {
		t.Errorf("instr count = %d", f.InstrCount())
	}
	if b0.Terminator() == nil || b0.Terminator().Op != OpBr {
		t.Error("terminator detection failed")
	}
	if b1.Terminator().Op != OpRet {
		t.Error("ret terminator missing")
	}
}

func TestValueStrings(t *testing.T) {
	cases := map[Value]string{
		Temp(3):                "t3",
		Const(-7):              "#-7",
		{Kind: VGlobal, ID: 2}: "@g2",
		{Kind: VLocal, ID: 1}:  "%l1",
		{Kind: VParam, ID: 0}:  "%p0",
		{Kind: VFunc, ID: 4}:   "@f4",
		None:                   "_",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestProgramDump(t *testing.T) {
	p := &Program{
		Globals: []Global{{Name: "g", Size: 4}},
	}
	f := &Func{Name: "main", ReturnsValue: true}
	b := f.NewBlock()
	b.Instrs = append(b.Instrs, Instr{Op: OpRet, A: Const(0)})
	p.Funcs = append(p.Funcs, f)
	dump := p.String()
	for _, want := range []string{"global g [4]", "func main", "ret #0"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	if p.FuncByName("main") != f {
		t.Error("FuncByName failed")
	}
	if p.FuncByName("nope") != nil {
		t.Error("FuncByName found ghost")
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: OpCall, Dst: Temp(1), Callee: "printf",
		Args: []Value{Const(1), Temp(0)}}
	s := in.String()
	for _, want := range []string{"t1 = call", "printf", "#1", "t0"} {
		if !strings.Contains(s, want) {
			t.Errorf("instr string %q missing %q", s, want)
		}
	}
}
