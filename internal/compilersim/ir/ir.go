// Package ir defines the three-address intermediate representation of the
// simulated compiler: typed virtual-register instructions grouped into
// basic blocks with explicit control-flow edges.
package ir

import (
	"fmt"
	"strings"
)

// Op enumerates IR operations.
type Op int

// IR operations.
const (
	OpNop Op = iota
	OpConst
	OpCopy
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpShl
	OpShr
	OpAnd
	OpOr
	OpXor
	OpNeg
	OpNot
	OpLNot
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE
	OpLoad    // Dst = *(A + B)     (base + offset)
	OpStore   // *(A + B) = C
	OpAddr    // Dst = &symbol A
	OpCall    // Dst = call A(Args...)
	OpRet     // return A (A may be None)
	OpBr      // unconditional branch to Succs[0]
	OpCondBr  // branch on A: true -> Succs[0], false -> Succs[1]
	OpSwitch  // multiway branch on A over Cases
	OpConvert // Dst = (type) A
	OpVecAdd  // vectorized add (produced by the loop vectorizer)
	OpVecMul  // vectorized mul
	OpStrLen  // produced by the string-builtin optimization
	OpIntrinsic
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpCopy: "copy", OpAdd: "add",
	OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem", OpShl: "shl",
	OpShr: "shr", OpAnd: "and", OpOr: "or", OpXor: "xor", OpNeg: "neg",
	OpNot: "not", OpLNot: "lnot", OpCmpEQ: "cmpeq", OpCmpNE: "cmpne",
	OpCmpLT: "cmplt", OpCmpLE: "cmple", OpCmpGT: "cmpgt", OpCmpGE: "cmpge",
	OpLoad: "load", OpStore: "store", OpAddr: "addr", OpCall: "call",
	OpRet: "ret", OpBr: "br", OpCondBr: "condbr", OpSwitch: "switch",
	OpConvert: "convert", OpVecAdd: "vecadd", OpVecMul: "vecmul",
	OpStrLen: "strlen", OpIntrinsic: "intrinsic",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}

// IsCommutative reports whether the op's operands may be swapped.
func (o Op) IsCommutative() bool {
	switch o {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpCmpEQ, OpCmpNE:
		return true
	}
	return false
}

// IsCompare reports whether the op yields a boolean comparison result.
func (o Op) IsCompare() bool { return o >= OpCmpEQ && o <= OpCmpGE }

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpRet, OpBr, OpCondBr, OpSwitch:
		return true
	}
	return false
}

// HasDst reports whether the instruction defines Dst.
func (o Op) HasDst() bool {
	switch o {
	case OpStore, OpRet, OpBr, OpCondBr, OpSwitch, OpNop:
		return false
	}
	return true
}

// ValueKind discriminates operand kinds.
type ValueKind int

// Operand kinds.
const (
	VNone   ValueKind = iota
	VTemp             // virtual register
	VConst            // integer constant
	VFConst           // float constant (bits in ID via math.Float64bits)
	VGlobal           // global symbol (index into Program.Globals)
	VLocal            // stack slot (index into Func.Locals)
	VParam            // parameter index
	VFunc             // function symbol (index into Program.Funcs)
)

// Value is an instruction operand.
type Value struct {
	Kind ValueKind
	ID   int64
}

// None is the absent operand.
var None = Value{}

// Temp returns a virtual-register value.
func Temp(id int) Value { return Value{Kind: VTemp, ID: int64(id)} }

// Const returns an integer-constant value.
func Const(v int64) Value { return Value{Kind: VConst, ID: v} }

func (v Value) String() string {
	switch v.Kind {
	case VNone:
		return "_"
	case VTemp:
		return fmt.Sprintf("t%d", v.ID)
	case VConst:
		return fmt.Sprintf("#%d", v.ID)
	case VFConst:
		return fmt.Sprintf("#f%d", v.ID)
	case VGlobal:
		return fmt.Sprintf("@g%d", v.ID)
	case VLocal:
		return fmt.Sprintf("%%l%d", v.ID)
	case VParam:
		return fmt.Sprintf("%%p%d", v.ID)
	case VFunc:
		return fmt.Sprintf("@f%d", v.ID)
	}
	return "?"
}

// Instr is a single three-address instruction.
type Instr struct {
	Op   Op
	Dst  Value
	A    Value
	B    Value
	C    Value
	Args []Value // call arguments
	// Callee is the called symbol's name for OpCall (builtins keep their
	// libc name; user functions their source name).
	Callee string
	// Cases holds (value -> successor index) pairs for OpSwitch; the
	// default successor is Block.Succs[len(Cases)].
	Cases []int64
	// Float marks a floating-point operation.
	Float bool
	// Width is the access size in bytes for OpLoad/OpStore (0 means 8).
	Width int8
}

func (in Instr) String() string {
	var sb strings.Builder
	if in.Op.HasDst() {
		fmt.Fprintf(&sb, "%s = ", in.Dst)
	}
	sb.WriteString(in.Op.String())
	for _, v := range []Value{in.A, in.B, in.C} {
		if v.Kind != VNone {
			sb.WriteString(" ")
			sb.WriteString(v.String())
		}
	}
	if in.Callee != "" {
		fmt.Fprintf(&sb, " %s", in.Callee)
	}
	for _, a := range in.Args {
		fmt.Fprintf(&sb, ", %s", a.String())
	}
	return sb.String()
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []Instr
	Succs  []int
	// Reachable is computed by DCE; entry starts true.
	Reachable bool
}

// Terminator returns the block's final instruction, or nil when the block
// falls through (irgen always appends an explicit terminator).
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := &b.Instrs[len(b.Instrs)-1]
	if last.Op.IsTerminator() {
		return last
	}
	return nil
}

// Func is an IR function.
type Func struct {
	Name    string
	NParams int
	// Locals counts stack slots; Globals are program-level.
	Locals   int
	Blocks   []*Block
	NextTemp int
	// ReturnsValue marks non-void functions.
	ReturnsValue bool
}

// NewBlock appends a fresh block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewTemp returns a fresh virtual register.
func (f *Func) NewTemp() Value {
	f.NextTemp++
	return Temp(f.NextTemp - 1)
}

// InstrCount returns the total instruction count across blocks.
func (f *Func) InstrCount() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(%d params, %d locals):\n", f.Name, f.NParams, f.Locals)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.ID)
		if len(b.Succs) > 0 {
			fmt.Fprintf(&sb, " -> %v", b.Succs)
		}
		sb.WriteString("\n")
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "    %s\n", in.String())
		}
	}
	return sb.String()
}

// Global is a program-level variable.
type Global struct {
	Name string
	Size int64
	// Const marks read-only globals; Volatile suppresses optimization.
	Const    bool
	Volatile bool
	// NulTerminated marks string-literal globals that carry a trailing
	// NUL; the sprintf/strlen optimization consults it.
	NulTerminated bool
	// Data is the initial contents (string literals, constant scalar
	// initializers); shorter than Size means zero-filled tail.
	Data []byte
}

// Program is a compiled translation unit in IR form.
type Program struct {
	Funcs   []*Func
	Globals []Global
}

// FuncByName returns the named function, or nil.
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

func (p *Program) String() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, "global %s [%d]\n", g.Name, g.Size)
	}
	for _, f := range p.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}
