// Package compilersim implements a complete simulated C compiler used as
// the fuzzing target standing in for GCC and Clang: a front-end (reusing
// internal/cast), an IR generator, an optimizer pipeline, and a back-end,
// all branch-coverage instrumented, plus a per-profile corpus of injected
// defects whose trigger structure reproduces where real compiler bugs
// live (see DESIGN.md).
package compilersim

import (
	"math"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/compilersim/ir"
)

// Features accumulates structural facts about the program being compiled;
// the injected-defect predicates match against it.
type Features map[string]int

// Add increments a feature counter.
func (f Features) Add(key string) { f[key]++ }

// AddN increments a feature counter by n.
func (f Features) AddN(key string, n int) { f[key] += n }

// Has reports whether a feature was observed.
func (f Features) Has(key string) bool { return f[key] > 0 }

// irgen lowers a checked translation unit into IR. It is a
// reset-and-reuse generator: one irgen per compile context, recycled
// across compilations. Everything it hands out (the Program, its Funcs,
// Blocks, instruction operand slices, global data bytes) is owned by the
// generator and valid only until the next generate call — the same
// borrow discipline as cast.Arena.
type irgen struct {
	prog  ir.Program
	fn    *ir.Func
	cur   *ir.Block
	trace *cover.Tracer
	feats Features

	globals map[string]int
	funcs   map[string]int
	locals  map[cast.Decl]int
	params  map[cast.Decl]int
	labels  map[string]*ir.Block

	breakStack    []*ir.Block
	continueStack []*ir.Block

	// Recycled object pools. funcN/blockN count how many entries of the
	// pool are live in the current program; reset rewinds the counters
	// and later generations overwrite in place.
	funcPool  []*ir.Func
	funcN     int
	blockPool []*ir.Block
	blockN    int

	// dataBuf backs Global.Data (string literal bytes, constant
	// initializers). vals/cases back Instr.Args and Instr.Cases.
	dataBuf []byte
	vals    bump[ir.Value]
	cases   bump[int64]

	// Scratch stacks (mark/cut discipline, so nested constructs compose).
	valBuf  []ir.Value
	armBuf  []swArm
	stmtBuf []cast.Stmt
	succBuf []*ir.Block
	caseBuf []int64
}

// swArm is one case/default arm of a switch; its statements are the
// contiguous stmtBuf range [s0, s1).
type swArm struct {
	value  int64
	isCase bool
	block  *ir.Block
	s0, s1 int
}

// bump hands out exact-size slices carved from one growing backing
// array. When the backing fills, it is abandoned to the issued slices
// and a larger one is allocated, so steady-state reuse stops allocating.
type bump[T any] struct{ buf []T }

func (bp *bump[T]) save(src []T) []T {
	n := len(src)
	if n == 0 {
		return nil
	}
	if cap(bp.buf)-len(bp.buf) < n {
		sz := 2 * (len(bp.buf) + n)
		if sz < 64 {
			sz = 64
		}
		bp.buf = make([]T, 0, sz)
	}
	off := len(bp.buf)
	bp.buf = append(bp.buf, src...)
	return bp.buf[off : off+n : off+n]
}

func (bp *bump[T]) reset() { bp.buf = bp.buf[:0] }

// initMaps allocates the generator's lookup maps (idempotent).
func (g *irgen) initMaps() {
	if g.globals == nil {
		g.globals = map[string]int{}
		g.funcs = map[string]int{}
		g.locals = map[cast.Decl]int{}
		g.params = map[cast.Decl]int{}
		g.labels = map[string]*ir.Block{}
	}
}

// GenerateIR lowers tu into an IR program. The tracer records IR-gen
// coverage; feats accumulates bug-predicate features. The returned
// program is freshly allocated and owned by the caller (per-stream
// contexts use irgen.generate directly and borrow instead).
func GenerateIR(tu *cast.TranslationUnit, trace *cover.Tracer, feats Features) *ir.Program {
	g := &irgen{trace: trace, feats: feats}
	g.initMaps()
	return g.generate(tu)
}

// generate resets the generator and lowers tu, returning the recycled
// program (borrowed: valid until the next generate on this irgen).
func (g *irgen) generate(tu *cast.TranslationUnit) *ir.Program {
	g.prog.Funcs = g.prog.Funcs[:0]
	g.prog.Globals = g.prog.Globals[:0]
	g.funcN, g.blockN = 0, 0
	g.dataBuf = g.dataBuf[:0]
	g.vals.reset()
	g.cases.reset()
	g.valBuf = g.valBuf[:0]
	g.armBuf = g.armBuf[:0]
	g.stmtBuf = g.stmtBuf[:0]
	g.succBuf = g.succBuf[:0]
	g.caseBuf = g.caseBuf[:0]
	g.breakStack = g.breakStack[:0]
	g.continueStack = g.continueStack[:0]
	clear(g.globals)
	clear(g.funcs)

	// First pass: globals.
	for _, d := range tu.Decls {
		if vd, ok := d.(*cast.VarDecl); ok {
			g.declareGlobal(vd)
		}
	}
	// Second pass: functions.
	for _, d := range tu.Decls {
		if fd, ok := d.(*cast.FunctionDecl); ok && fd.IsDefinition() {
			g.genFunction(fd)
		}
	}
	return &g.prog
}

// newFunc returns a recycled function object appended to the program.
func (g *irgen) newFunc(name string, nparams int, returnsValue bool) *ir.Func {
	var fn *ir.Func
	if g.funcN < len(g.funcPool) {
		fn = g.funcPool[g.funcN]
		blocks := fn.Blocks[:0]
		*fn = ir.Func{Name: name, NParams: nparams, ReturnsValue: returnsValue,
			Blocks: blocks}
	} else {
		fn = &ir.Func{Name: name, NParams: nparams, ReturnsValue: returnsValue}
		g.funcPool = append(g.funcPool, fn)
	}
	g.funcN++
	return fn
}

// newBlock returns a recycled block appended to the current function
// (same shape as ir.Func.NewBlock, minus the per-block allocation).
func (g *irgen) newBlock() *ir.Block {
	var b *ir.Block
	if g.blockN < len(g.blockPool) {
		b = g.blockPool[g.blockN]
		b.Instrs = b.Instrs[:0]
		b.Succs = b.Succs[:0]
		b.Reachable = false
	} else {
		b = &ir.Block{}
		g.blockPool = append(g.blockPool, b)
	}
	g.blockN++
	b.ID = len(g.fn.Blocks)
	g.fn.Blocks = append(g.fn.Blocks, b)
	return b
}

// internBytes copies s (plus an optional NUL) into the generator's data
// arena, for Global.Data.
func (g *irgen) internBytes(s string, addNul bool) []byte {
	n := len(s)
	if addNul {
		n++
	}
	if cap(g.dataBuf)-len(g.dataBuf) < n {
		sz := 2 * (len(g.dataBuf) + n)
		if sz < 256 {
			sz = 256
		}
		g.dataBuf = make([]byte, 0, sz)
	}
	off := len(g.dataBuf)
	g.dataBuf = append(g.dataBuf, s...)
	if addNul {
		g.dataBuf = append(g.dataBuf, 0)
	}
	return g.dataBuf[off : off+n : off+n]
}

// constBytes stores v's 8 little-endian bytes in the data arena.
func (g *irgen) constBytes(v int64) []byte {
	if cap(g.dataBuf)-len(g.dataBuf) < 8 {
		sz := 2 * (len(g.dataBuf) + 8)
		if sz < 256 {
			sz = 256
		}
		g.dataBuf = make([]byte, 0, sz)
	}
	off := len(g.dataBuf)
	for i := 0; i < 8; i++ {
		g.dataBuf = append(g.dataBuf, byte(v>>(8*i)))
	}
	return g.dataBuf[off : off+8 : off+8]
}

func (g *irgen) declareGlobal(vd *cast.VarDecl) {
	if _, dup := g.globals[vd.Name]; dup {
		return
	}
	size := vd.Ty.Size()
	if size < 0 {
		size = 8
	}
	g.globals[vd.Name] = len(g.prog.Globals)
	glob := ir.Global{
		Name:     vd.Name,
		Size:     size,
		Const:    vd.Ty.Q&cast.QualConst != 0,
		Volatile: vd.Ty.Q&cast.QualVolatile != 0,
	}
	// Materialize constant initial values so execution sees them.
	if vd.Init != nil {
		if v, ok := cast.ConstIntValue(vd.Init); ok {
			glob.Data = g.constBytes(v)
		} else if sl, ok := vd.Init.(*cast.StringLiteral); ok {
			glob.Data = g.internBytes(sl.Value, true)
			glob.NulTerminated = true
		}
	}
	g.prog.Globals = append(g.prog.Globals, glob)
	g.trace.HitN("global", int(size%64))
	if vd.Ty.Q&cast.QualVolatile != 0 {
		g.feats.Add("global.volatile")
	}
	if vd.Ty.IsComplex() {
		g.feats.Add("global.complex")
	}
}

// internString registers a string literal as an anonymous global.
func (g *irgen) internString(s *cast.StringLiteral) ir.Value {
	idx := len(g.prog.Globals)
	name := strGlobalName(idx)
	data := g.internBytes(s.Value, true)
	g.prog.Globals = append(g.prog.Globals, ir.Global{
		Name: name, Size: int64(len(s.Value)) + 1, Const: true,
		NulTerminated: true, Data: data,
	})
	t := g.fn.NewTemp()
	g.emit(ir.Instr{Op: ir.OpAddr, Dst: t, A: ir.Value{Kind: ir.VGlobal, ID: int64(idx)}})
	return t
}

func (g *irgen) genFunction(fd *cast.FunctionDecl) {
	g.fn = g.newFunc(fd.Name, len(fd.Params), !fd.Ret.IsVoid())
	g.funcs[fd.Name] = len(g.prog.Funcs)
	g.prog.Funcs = append(g.prog.Funcs, g.fn)
	clear(g.locals)
	clear(g.params)
	clear(g.labels)
	for i, pv := range fd.Params {
		g.params[pv] = i
	}
	g.cur = g.newBlock()
	g.trace.HitN("func.params", len(fd.Params))
	g.feats.AddN("fn.count", 1)
	if fd.Ret.IsVoid() {
		g.feats.Add("fn.void")
	}
	// Collect labels up front so forward gotos resolve; also classify the
	// Ret2V shape (void function whose labels have no trailing
	// computation and which contains no return statements) that Clang
	// issue #63762 hinges on.
	emptyLabels, returns, gotos := 0, 0, 0
	cast.Walk(fd.Body, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.LabelStmt:
			if _, dup := g.labels[x.Name]; !dup {
				g.labels[x.Name] = g.newBlock()
			}
			if x.Body == nil {
				emptyLabels++
			} else if _, isNull := x.Body.(*cast.NullStmt); isNull {
				emptyLabels++
			}
		case *cast.ReturnStmt:
			returns++
		case *cast.GotoStmt:
			gotos++
		}
		return true
	})
	if fd.Ret.IsVoid() && emptyLabels > 0 && returns == 0 && gotos > 0 {
		g.feats.Add("fn.void.labels.noreturn")
	}
	g.genStmt(fd.Body)
	// Implicit return.
	if g.cur.Terminator() == nil {
		g.emit(ir.Instr{Op: ir.OpRet})
	}
	g.sealBlocks()
}

// sealBlocks gives every non-terminated block an explicit terminator (a
// fallthrough br) so downstream passes can rely on block shape.
func (g *irgen) sealBlocks() {
	for i, b := range g.fn.Blocks {
		if b.Terminator() == nil {
			if i+1 < len(g.fn.Blocks) {
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpBr})
				b.Succs = append(b.Succs[:0], i+1)
			} else {
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpRet})
			}
		}
	}
}

func (g *irgen) emit(in ir.Instr) {
	g.cur.Instrs = append(g.cur.Instrs, in)
	g.trace.HitNHash(emitSiteHash[in.Op], len(g.cur.Instrs)%17)
}

func (g *irgen) setSuccs(b *ir.Block, succs ...*ir.Block) {
	b.Succs = b.Succs[:0]
	for _, s := range succs {
		b.Succs = append(b.Succs, s.ID)
	}
}

// br terminates the current block with a jump to target and switches to a
// new current block.
func (g *irgen) br(target *ir.Block) {
	if g.cur.Terminator() == nil {
		g.cur.Instrs = append(g.cur.Instrs, ir.Instr{Op: ir.OpBr})
		g.setSuccs(g.cur, target)
	}
}

func (g *irgen) condBr(cond ir.Value, t, f *ir.Block) {
	g.cur.Instrs = append(g.cur.Instrs, ir.Instr{Op: ir.OpCondBr, A: cond})
	g.setSuccs(g.cur, t, f)
}

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

func (g *irgen) genStmt(s cast.Stmt) {
	if s == nil {
		return
	}
	// Edge sites scale with position so structurally larger programs
	// keep minting new edges — matching how deeper inputs reach more of
	// a real compiler.
	g.trace.HitNHash(stmtSiteHash[s.Kind()], len(g.fn.Blocks)%31)
	switch x := s.(type) {
	case *cast.CompoundStmt:
		for _, inner := range x.Stmts {
			g.genStmt(inner)
		}
	case *cast.DeclStmt:
		for _, d := range x.Decls {
			if vd, ok := d.(*cast.VarDecl); ok {
				g.genLocalDecl(vd)
			}
		}
	case *cast.ExprStmt:
		g.genExpr(x.X)
	case *cast.NullStmt:
	case *cast.IfStmt:
		g.genIf(x)
	case *cast.WhileStmt:
		g.genWhile(x)
	case *cast.DoStmt:
		g.genDo(x)
	case *cast.ForStmt:
		g.genFor(x)
	case *cast.SwitchStmt:
		g.genSwitch(x)
	case *cast.BreakStmt:
		if n := len(g.breakStack); n > 0 {
			g.br(g.breakStack[n-1])
			g.cur = g.newBlock()
		}
	case *cast.ContinueStmt:
		if n := len(g.continueStack); n > 0 {
			g.br(g.continueStack[n-1])
			g.cur = g.newBlock()
		}
	case *cast.ReturnStmt:
		if x.Value != nil {
			v := g.genExpr(x.Value)
			g.cur.Instrs = append(g.cur.Instrs, ir.Instr{Op: ir.OpRet, A: v})
		} else {
			g.cur.Instrs = append(g.cur.Instrs, ir.Instr{Op: ir.OpRet})
		}
		g.feats.Add("stmt.return")
		g.cur = g.newBlock()
	case *cast.GotoStmt:
		g.feats.Add("stmt.goto")
		if target, ok := g.labels[x.Label]; ok {
			g.br(target)
		}
		g.cur = g.newBlock()
	case *cast.LabelStmt:
		g.feats.Add("stmt.label")
		target := g.labels[x.Name]
		g.br(target)
		g.cur = target
		if _, isNull := x.Body.(*cast.NullStmt); x.Body == nil || isNull {
			g.feats.Add("stmt.label.empty")
		}
		if x.Body != nil {
			g.genStmt(x.Body)
		}
	case *cast.CaseStmt, *cast.DefaultStmt:
		// Reached only outside a recognized switch body; treat the label
		// body as plain code.
		if cs, ok := x.(*cast.CaseStmt); ok && cs.Body != nil {
			g.genStmt(cs.Body)
		}
		if ds, ok := x.(*cast.DefaultStmt); ok && ds.Body != nil {
			g.genStmt(ds.Body)
		}
	}
}

func (g *irgen) genLocalDecl(vd *cast.VarDecl) {
	slot := g.fn.Locals
	g.fn.Locals++
	g.locals[vd] = slot
	g.trace.HitN("local", slot%13)
	if vd.Ty.IsArray() {
		g.feats.Add("local.array")
	}
	if vd.Ty.IsRecord() {
		g.feats.Add("local.struct")
	}
	if vd.Init != nil {
		v := g.genExpr(vd.Init)
		if v.Kind == ir.VConst && v.ID == 0 {
			g.feats.Add("init.zerostore")
		}
		g.emit(ir.Instr{Op: ir.OpStore,
			A: ir.Value{Kind: ir.VLocal, ID: int64(slot)}, B: ir.Const(0), C: v})
	}
}

func (g *irgen) genIf(x *cast.IfStmt) {
	cond := g.genExpr(x.Cond)
	thenB := g.newBlock()
	elseB := g.newBlock()
	exitB := g.newBlock()
	g.condBr(cond, thenB, elseB)
	g.cur = thenB
	g.genStmt(x.Then)
	g.br(exitB)
	g.cur = elseB
	if x.Else != nil {
		g.feats.Add("stmt.ifelse")
		g.genStmt(x.Else)
	}
	g.br(exitB)
	g.cur = exitB
}

func (g *irgen) genWhile(x *cast.WhileStmt) {
	head := g.newBlock()
	body := g.newBlock()
	exit := g.newBlock()
	g.br(head)
	g.cur = head
	cond := g.genExpr(x.Cond)
	g.condBr(cond, body, exit)
	g.pushLoop(exit, head)
	g.cur = body
	g.genStmt(x.Body)
	g.br(head)
	g.popLoop()
	g.cur = exit
	g.feats.Add("loop.while")
}

func (g *irgen) genDo(x *cast.DoStmt) {
	body := g.newBlock()
	head := g.newBlock()
	exit := g.newBlock()
	g.br(body)
	g.pushLoop(exit, head)
	g.cur = body
	g.genStmt(x.Body)
	g.br(head)
	g.cur = head
	cond := g.genExpr(x.Cond)
	g.condBr(cond, body, exit)
	g.popLoop()
	g.cur = exit
	g.feats.Add("loop.do")
}

func (g *irgen) genFor(x *cast.ForStmt) {
	if x.Init != nil {
		g.genStmt(x.Init)
	}
	head := g.newBlock()
	body := g.newBlock()
	post := g.newBlock()
	exit := g.newBlock()
	g.br(head)
	g.cur = head
	if x.Cond != nil {
		cond := g.genExpr(x.Cond)
		g.condBr(cond, body, exit)
	} else {
		g.br(body)
		g.feats.Add("loop.infinite")
	}
	g.pushLoop(exit, post)
	g.cur = body
	g.genStmt(x.Body)
	g.br(post)
	g.cur = post
	if x.Post != nil {
		g.genExpr(x.Post)
	}
	g.br(head)
	g.popLoop()
	g.cur = exit
	g.feats.Add("loop.for")
}

func (g *irgen) genSwitch(x *cast.SwitchStmt) {
	cond := g.genExpr(x.Cond)
	exit := g.newBlock()
	body, ok := x.Body.(*cast.CompoundStmt)
	if !ok {
		// Degenerate switch; evaluate and skip.
		g.br(exit)
		g.cur = exit
		return
	}
	// Map each case/default label to a block; code between labels flows
	// into the previous label's chain (fallthrough preserved). Arms and
	// their statement lists live on shared scratch stacks with mark/cut
	// discipline (statements only ever append to the newest arm, so each
	// arm's statements form a contiguous stmtBuf run).
	armMark := len(g.armBuf)
	stmtMark := len(g.stmtBuf)
	var defaultBlock *ir.Block
	for _, s := range body.Stmts {
		switch lbl := s.(type) {
		case *cast.CaseStmt:
			v, _ := cast.ConstIntValue(lbl.Value)
			a := swArm{value: v, isCase: true, block: g.newBlock(),
				s0: len(g.stmtBuf), s1: len(g.stmtBuf)}
			if lbl.Body != nil {
				g.stmtBuf = append(g.stmtBuf, lbl.Body)
				a.s1++
			}
			g.armBuf = append(g.armBuf, a)
		case *cast.DefaultStmt:
			b := g.newBlock()
			defaultBlock = b
			a := swArm{isCase: false, block: b,
				s0: len(g.stmtBuf), s1: len(g.stmtBuf)}
			if lbl.Body != nil {
				g.stmtBuf = append(g.stmtBuf, lbl.Body)
				a.s1++
			}
			g.armBuf = append(g.armBuf, a)
		default:
			if len(g.armBuf) > armMark {
				g.stmtBuf = append(g.stmtBuf, s)
				g.armBuf[len(g.armBuf)-1].s1++
			}
		}
	}
	arms := g.armBuf[armMark:]
	g.feats.AddN("switch.arms", len(arms))
	g.trace.HitN("switch", len(arms)%23)
	// Emit the dispatcher. Case values collect on a scratch stack and the
	// final slice is carved from the arena.
	sw := ir.Instr{Op: ir.OpSwitch, A: cond}
	succMark := len(g.succBuf)
	caseMark := len(g.caseBuf)
	for i := range arms {
		if arms[i].isCase {
			g.caseBuf = append(g.caseBuf, arms[i].value)
			g.succBuf = append(g.succBuf, arms[i].block)
		}
	}
	sw.Cases = g.cases.save(g.caseBuf[caseMark:])
	g.caseBuf = g.caseBuf[:caseMark]
	if defaultBlock != nil {
		g.succBuf = append(g.succBuf, defaultBlock)
	} else {
		g.succBuf = append(g.succBuf, exit)
	}
	g.cur.Instrs = append(g.cur.Instrs, sw)
	g.setSuccs(g.cur, g.succBuf[succMark:]...)
	g.succBuf = g.succBuf[:succMark]
	// Emit arm bodies with fallthrough. Nested switches push past our
	// marks and truncate back, so index-based ranges stay valid.
	g.pushLoop(exit, nil)
	for i := range arms {
		a := arms[i]
		g.cur = a.block
		for _, s := range g.stmtBuf[a.s0:a.s1] {
			g.genStmt(s)
		}
		if i+1 < len(arms) {
			g.br(arms[i+1].block)
		} else {
			g.br(exit)
		}
	}
	g.popLoop()
	g.cur = exit
	g.armBuf = g.armBuf[:armMark]
	g.stmtBuf = g.stmtBuf[:stmtMark]
}

func (g *irgen) pushLoop(brk, cont *ir.Block) {
	g.breakStack = append(g.breakStack, brk)
	if cont != nil {
		g.continueStack = append(g.continueStack, cont)
	} else {
		// switch: continue binds to the enclosing loop; push nothing by
		// duplicating the previous target when present.
		if n := len(g.continueStack); n > 0 {
			g.continueStack = append(g.continueStack, g.continueStack[n-1])
		} else {
			g.continueStack = append(g.continueStack, nil)
		}
	}
}

func (g *irgen) popLoop() {
	g.breakStack = g.breakStack[:len(g.breakStack)-1]
	g.continueStack = g.continueStack[:len(g.continueStack)-1]
}

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

var binOpToIR = map[cast.BinOp]ir.Op{
	cast.BinAdd: ir.OpAdd, cast.BinSub: ir.OpSub, cast.BinMul: ir.OpMul,
	cast.BinDiv: ir.OpDiv, cast.BinRem: ir.OpRem, cast.BinShl: ir.OpShl,
	cast.BinShr: ir.OpShr, cast.BinAnd: ir.OpAnd, cast.BinOr: ir.OpOr,
	cast.BinXor: ir.OpXor, cast.BinEQ: ir.OpCmpEQ, cast.BinNE: ir.OpCmpNE,
	cast.BinLT: ir.OpCmpLT, cast.BinLE: ir.OpCmpLE, cast.BinGT: ir.OpCmpGT,
	cast.BinGE: ir.OpCmpGE,
}

func (g *irgen) genExpr(e cast.Expr) ir.Value {
	if e == nil {
		return ir.None
	}
	g.trace.HitNHash(exprSiteHash[e.Kind()], g.fn.NextTemp%29)
	switch x := e.(type) {
	case *cast.IntegerLiteral:
		return ir.Const(x.Value)
	case *cast.CharLiteral:
		return ir.Const(int64(x.Value))
	case *cast.FloatingLiteral:
		g.feats.Add("expr.float")
		return ir.Value{Kind: ir.VFConst, ID: int64(math.Float64bits(x.Value))}
	case *cast.StringLiteral:
		return g.internString(x)
	case *cast.DeclRefExpr:
		return g.genLoad(x)
	case *cast.ParenExpr:
		return g.genExpr(x.X)
	case *cast.BinaryOperator:
		return g.genBinary(x)
	case *cast.UnaryOperator:
		return g.genUnary(x)
	case *cast.CallExpr:
		return g.genCall(x)
	case *cast.ArraySubscriptExpr:
		addr, off := g.genAddressOf(x)
		t := g.fn.NewTemp()
		g.emit(ir.Instr{Op: ir.OpLoad, Dst: t, A: addr, B: off,
			Width: widthOf(x.Type())})
		return t
	case *cast.MemberExpr:
		g.feats.Add("expr.member")
		addr, off := g.genAddressOf(x)
		t := g.fn.NewTemp()
		g.emit(ir.Instr{Op: ir.OpLoad, Dst: t, A: addr, B: off,
			Width: widthOf(x.Type())})
		return t
	case *cast.CastExpr:
		g.feats.Add("expr.cast")
		if x.To.IsRecord() {
			g.feats.Add("expr.cast.struct")
		}
		if x.To.IsComplex() {
			g.feats.Add("expr.cast.complex")
		}
		v := g.genExpr(x.X)
		t := g.fn.NewTemp()
		g.emit(ir.Instr{Op: ir.OpConvert, Dst: t, A: v,
			Float: x.To.IsFloating() || x.To.IsComplex()})
		return t
	case *cast.ConditionalExpr:
		return g.genConditional(x)
	case *cast.SizeofExpr:
		sz := int64(8)
		if x.X != nil && !x.X.Type().IsNil() {
			if s := x.X.Type().Size(); s > 0 {
				sz = s
			}
		} else if !x.OfType.IsNil() {
			if s := x.OfType.Size(); s > 0 {
				sz = s
			}
		}
		return ir.Const(sz)
	case *cast.InitListExpr:
		g.feats.Add("expr.initlist")
		var last ir.Value = ir.Const(0)
		for _, in := range x.Inits {
			last = g.genExpr(in)
		}
		return last
	case *cast.CompoundLiteralExpr:
		g.feats.Add("expr.compoundlit")
		if k, ok := x.To.Basic(); ok && k != cast.Void && len(x.Init.Inits) > 0 {
			if _, isList := x.Init.Inits[0].(*cast.InitListExpr); isList {
				// "(int){{}, 0}" — scalar compound literal with braced
				// init; Clang #69213's shape.
				g.feats.Add("expr.compoundlit.scalarbrace")
			}
		}
		return g.genExpr(x.Init)
	case *cast.CommaExpr:
		g.genExpr(x.LHS)
		return g.genExpr(x.RHS)
	}
	return ir.None
}

// genLoad reads a named variable.
func (g *irgen) genLoad(x *cast.DeclRefExpr) ir.Value {
	switch d := x.Ref.(type) {
	case *cast.EnumConstantDecl:
		return ir.Const(d.Num)
	case *cast.ParmVarDecl:
		if idx, ok := g.params[d]; ok {
			return ir.Value{Kind: ir.VParam, ID: int64(idx)}
		}
	case *cast.VarDecl:
		if slot, ok := g.locals[d]; ok {
			if d.Ty.IsArray() {
				// Arrays decay: yield the slot address.
				t := g.fn.NewTemp()
				g.emit(ir.Instr{Op: ir.OpAddr, Dst: t,
					A: ir.Value{Kind: ir.VLocal, ID: int64(slot)}})
				return t
			}
			t := g.fn.NewTemp()
			g.emit(ir.Instr{Op: ir.OpLoad, Dst: t,
				A: ir.Value{Kind: ir.VLocal, ID: int64(slot)}, B: ir.Const(0)})
			return t
		}
		if gi, ok := g.globals[d.Name]; ok {
			if d.Ty.IsArray() {
				t := g.fn.NewTemp()
				g.emit(ir.Instr{Op: ir.OpAddr, Dst: t,
					A: ir.Value{Kind: ir.VGlobal, ID: int64(gi)}})
				return t
			}
			t := g.fn.NewTemp()
			g.emit(ir.Instr{Op: ir.OpLoad, Dst: t,
				A: ir.Value{Kind: ir.VGlobal, ID: int64(gi)}, B: ir.Const(0)})
			return t
		}
	case *cast.FunctionDecl:
		if fi, ok := g.funcs[d.Name]; ok {
			return ir.Value{Kind: ir.VFunc, ID: int64(fi)}
		}
		return ir.Value{Kind: ir.VFunc, ID: -1}
	}
	// Unresolved (e.g. shadowed redeclaration): treat as fresh temp.
	return g.fn.NewTemp()
}

// genAddressOf computes (base, offset) for an lvalue expression.
func (g *irgen) genAddressOf(e cast.Expr) (base, off ir.Value) {
	switch x := e.(type) {
	case *cast.DeclRefExpr:
		switch d := x.Ref.(type) {
		case *cast.VarDecl:
			if slot, ok := g.locals[d]; ok {
				return ir.Value{Kind: ir.VLocal, ID: int64(slot)}, ir.Const(0)
			}
			if gi, ok := g.globals[d.Name]; ok {
				return ir.Value{Kind: ir.VGlobal, ID: int64(gi)}, ir.Const(0)
			}
		case *cast.ParmVarDecl:
			// Writable parameter: model as its own slot keyed by param.
			return ir.Value{Kind: ir.VParam, ID: int64(g.params[d])}, ir.Const(0)
		}
		return g.fn.NewTemp(), ir.Const(0)
	case *cast.ParenExpr:
		return g.genAddressOf(x.X)
	case *cast.ArraySubscriptExpr:
		baseV := g.genExpr(x.Base)
		idx := g.genExpr(x.Index)
		esz := int64(4)
		if pt, ok := x.Base.Type().Decay().PointeeType(); ok && pt.Size() > 0 {
			esz = pt.Size()
		}
		scaled := g.fn.NewTemp()
		// Power-of-two element sizes use scaled addressing (a shift)
		// directly, as a real code generator would — routing them through
		// OpMul would let the optimizer's strength reduction fire on
		// every subscript, drowning the source-level signal.
		if esz > 0 && esz&(esz-1) == 0 {
			sh := int64(0)
			for v := esz; v > 1; v >>= 1 {
				sh++
			}
			g.emit(ir.Instr{Op: ir.OpShl, Dst: scaled, A: idx, B: ir.Const(sh)})
		} else {
			g.emit(ir.Instr{Op: ir.OpMul, Dst: scaled, A: idx, B: ir.Const(esz)})
		}
		return baseV, scaled
	case *cast.MemberExpr:
		var fieldOff int64
		if x.FieldDecl != nil {
			fieldOff = g.fieldOffset(x)
		}
		if x.IsArrow {
			b := g.genExpr(x.Base)
			return b, ir.Const(fieldOff)
		}
		b, o := g.genAddressOf(x.Base)
		if o.Kind == ir.VConst {
			return b, ir.Const(o.ID + fieldOff)
		}
		sum := g.fn.NewTemp()
		g.emit(ir.Instr{Op: ir.OpAdd, Dst: sum, A: o, B: ir.Const(fieldOff)})
		return b, sum
	case *cast.UnaryOperator:
		if x.Op == cast.UnDeref {
			v := g.genExpr(x.X)
			return v, ir.Const(0)
		}
	case *cast.CastExpr:
		return g.genAddressOf(x.X)
	}
	// Fall back: evaluate as rvalue and use as an address.
	return g.genExpr(e), ir.Const(0)
}

func (g *irgen) fieldOffset(me *cast.MemberExpr) int64 {
	target := me.Base.Type()
	if me.IsArrow {
		if pt, ok := target.Decay().PointeeType(); ok {
			target = pt
		}
	}
	rt, ok := target.Canonical().T.(*cast.RecordType)
	if !ok {
		return 0
	}
	var off int64
	for _, f := range rt.Decl.Fields {
		sz := f.Ty.Size()
		if sz <= 0 {
			sz = 8
		}
		al := sz
		if al > 8 {
			al = 8
		}
		off = (off + al - 1) / al * al
		if f.Name == me.Field {
			return off
		}
		if !rt.Decl.IsUnion {
			off += sz
		} else {
			off = 0
		}
	}
	return 0
}

func (g *irgen) genBinary(x *cast.BinaryOperator) ir.Value {
	if x.Op.IsAssignment() {
		return g.genAssign(x)
	}
	if x.Op.IsLogical() {
		return g.genLogical(x)
	}
	a := g.genExpr(x.LHS)
	b := g.genExpr(x.RHS)
	op := binOpToIR[x.Op]
	t := g.fn.NewTemp()
	isFloat := x.LHS.Type().IsFloating() || x.RHS.Type().IsFloating() ||
		x.LHS.Type().IsComplex() || x.RHS.Type().IsComplex()
	if isFloat {
		g.feats.Add("expr.floatarith")
	}
	if x.Op == cast.BinDiv || x.Op == cast.BinRem {
		g.feats.Add("expr.div")
	}
	g.emit(ir.Instr{Op: op, Dst: t, A: a, B: b, Float: isFloat})
	return t
}

// compoundToIR maps compound-assignment operators to their underlying
// arithmetic op (package-level so genAssign does not rebuild it).
var compoundToIR = map[cast.BinOp]ir.Op{
	cast.BinAddAssign: ir.OpAdd, cast.BinSubAssign: ir.OpSub,
	cast.BinMulAssign: ir.OpMul, cast.BinDivAssign: ir.OpDiv,
	cast.BinRemAssign: ir.OpRem, cast.BinShlAssign: ir.OpShl,
	cast.BinShrAssign: ir.OpShr, cast.BinAndAssign: ir.OpAnd,
	cast.BinOrAssign: ir.OpOr, cast.BinXorAssign: ir.OpXor,
}

func (g *irgen) genAssign(x *cast.BinaryOperator) ir.Value {
	base, off := g.genAddressOf(x.LHS)
	w := widthOf(x.LHS.Type())
	var val ir.Value
	if x.Op == cast.BinAssign {
		val = g.genExpr(x.RHS)
	} else {
		// Compound: load, op, store.
		cur := g.fn.NewTemp()
		g.emit(ir.Instr{Op: ir.OpLoad, Dst: cur, A: base, B: off, Width: w})
		rhs := g.genExpr(x.RHS)
		t := g.fn.NewTemp()
		under := compoundToIR[x.Op]
		g.emit(ir.Instr{Op: under, Dst: t, A: cur, B: rhs,
			Float: x.LHS.Type().IsFloating()})
		val = t
	}
	g.emit(ir.Instr{Op: ir.OpStore, A: base, B: off, C: val, Width: w})
	return val
}

func (g *irgen) genLogical(x *cast.BinaryOperator) ir.Value {
	// Short-circuit lowering with control flow.
	g.feats.Add("expr.logical")
	a := g.genExpr(x.LHS)
	rhsB := g.newBlock()
	exitB := g.newBlock()
	t := g.fn.NewTemp()
	// Initialize result with lhs-derived value.
	g.emit(ir.Instr{Op: ir.OpCmpNE, Dst: t, A: a, B: ir.Const(0)})
	if x.Op == cast.BinLAnd {
		g.condBr(t, rhsB, exitB)
	} else {
		g.condBr(t, exitB, rhsB)
	}
	g.cur = rhsB
	b := g.genExpr(x.RHS)
	g.emit(ir.Instr{Op: ir.OpCmpNE, Dst: t, A: b, B: ir.Const(0)})
	g.br(exitB)
	g.cur = exitB
	return t
}

func (g *irgen) genUnary(x *cast.UnaryOperator) ir.Value {
	switch x.Op {
	case cast.UnPlus:
		return g.genExpr(x.X)
	case cast.UnMinus:
		v := g.genExpr(x.X)
		t := g.fn.NewTemp()
		g.emit(ir.Instr{Op: ir.OpNeg, Dst: t, A: v, Float: x.X.Type().IsFloating()})
		return t
	case cast.UnNot:
		v := g.genExpr(x.X)
		t := g.fn.NewTemp()
		g.emit(ir.Instr{Op: ir.OpNot, Dst: t, A: v})
		return t
	case cast.UnLNot:
		v := g.genExpr(x.X)
		t := g.fn.NewTemp()
		g.emit(ir.Instr{Op: ir.OpLNot, Dst: t, A: v})
		return t
	case cast.UnDeref:
		g.feats.Add("expr.deref")
		v := g.genExpr(x.X)
		t := g.fn.NewTemp()
		w := int8(8)
		if pt, ok := x.X.Type().Decay().PointeeType(); ok {
			w = widthOf(pt)
		}
		g.emit(ir.Instr{Op: ir.OpLoad, Dst: t, A: v, B: ir.Const(0), Width: w})
		return t
	case cast.UnAddr:
		g.feats.Add("expr.addrof")
		if x.X.Type().IsComplex() {
			g.feats.Add("expr.addrof.complex")
		}
		base, off := g.genAddressOf(x.X)
		t := g.fn.NewTemp()
		g.emit(ir.Instr{Op: ir.OpAddr, Dst: t, A: base, B: off})
		return t
	case cast.UnPreInc, cast.UnPreDec, cast.UnPostInc, cast.UnPostDec:
		base, off := g.genAddressOf(x.X)
		w := widthOf(x.X.Type())
		cur := g.fn.NewTemp()
		g.emit(ir.Instr{Op: ir.OpLoad, Dst: cur, A: base, B: off, Width: w})
		op := ir.OpAdd
		if x.Op == cast.UnPreDec || x.Op == cast.UnPostDec {
			op = ir.OpSub
		}
		nv := g.fn.NewTemp()
		g.emit(ir.Instr{Op: op, Dst: nv, A: cur, B: ir.Const(1)})
		g.emit(ir.Instr{Op: ir.OpStore, A: base, B: off, C: nv, Width: w})
		if x.Op.IsPostfix() {
			return cur
		}
		return nv
	}
	return ir.None
}

func (g *irgen) genConditional(x *cast.ConditionalExpr) ir.Value {
	g.feats.Add("expr.conditional")
	cond := g.genExpr(x.Cond)
	thenB := g.newBlock()
	elseB := g.newBlock()
	exitB := g.newBlock()
	// Use a dedicated local slot as the merge point (no SSA phi).
	slot := g.fn.Locals
	g.fn.Locals++
	g.condBr(cond, thenB, elseB)
	g.cur = thenB
	tv := g.genExpr(x.Then)
	g.emit(ir.Instr{Op: ir.OpStore,
		A: ir.Value{Kind: ir.VLocal, ID: int64(slot)}, B: ir.Const(0), C: tv})
	g.br(exitB)
	g.cur = elseB
	ev := g.genExpr(x.Else)
	g.emit(ir.Instr{Op: ir.OpStore,
		A: ir.Value{Kind: ir.VLocal, ID: int64(slot)}, B: ir.Const(0), C: ev})
	g.br(exitB)
	g.cur = exitB
	t := g.fn.NewTemp()
	g.emit(ir.Instr{Op: ir.OpLoad, Dst: t,
		A: ir.Value{Kind: ir.VLocal, ID: int64(slot)}, B: ir.Const(0)})
	return t
}

func (g *irgen) genCall(x *cast.CallExpr) ir.Value {
	// Build the argument list on the shared scratch stack (nested calls
	// compose via mark/cut) and carve the final slice from the arena.
	mark := len(g.valBuf)
	for _, a := range x.Args {
		v := g.genExpr(a)
		g.valBuf = append(g.valBuf, v)
	}
	args := g.vals.save(g.valBuf[mark:])
	g.valBuf = g.valBuf[:mark]
	name := ""
	if dr, ok := x.Fn.(*cast.DeclRefExpr); ok {
		name = dr.Name
	} else {
		g.genExpr(x.Fn)
		g.feats.Add("expr.indirectcall")
	}
	g.feats.Add("expr.call")
	// Coverage sites must not depend on user identifiers — every fresh
	// name would mint fresh edges, letting generators inflate coverage by
	// renaming. Only the bounded builtin set keeps its name.
	site := callUserSite
	if h, ok := builtinCallSite[name]; ok {
		site = h
	}
	g.trace.HitNHash(site, len(args))
	t := g.fn.NewTemp()
	g.emit(ir.Instr{Op: ir.OpCall, Dst: t, Callee: name, Args: args})
	return t
}

// widthOf maps a C type to its memory access width in bytes.
func widthOf(t cast.QualType) int8 {
	sz := t.Decay().Size()
	switch sz {
	case 1, 2, 4:
		return int8(sz)
	default:
		return 8
	}
}

// builtinCallees is the bounded set of libc names with dedicated
// compiler handling (and hence dedicated coverage sites).
var builtinCallees = map[string]bool{
	"printf": true, "sprintf": true, "snprintf": true, "fprintf": true,
	"scanf": true, "memset": true, "memcpy": true, "memcmp": true,
	"strlen": true, "strcpy": true, "strcmp": true, "strcat": true,
	"abort": true, "exit": true, "malloc": true, "calloc": true,
	"free": true, "rand": true, "srand": true, "abs": true, "labs": true,
	"putchar": true, "puts": true, "atoi": true, "fabs": true,
	"sqrt": true, "pow": true,
}

func isBuiltinCallee(name string) bool { return builtinCallees[name] }
