package compilersim

import "testing"

const benchSrc = `
int g = 42;
const char *msg = "hello";
int sum(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i * 2; } return s; }
int main() { int a = 3; int b = 4; if (a < b) { a = a + b; } else { b = b - a; }
  switch (a) { case 1: a++; break; case 7: b--; break; default: a = 0; }
  while (b > 0) { b -= 1; } return sum(a) + g; }
`

func BenchmarkContextCompile(b *testing.B) {
	c := New("gcc", 14)
	cx := c.NewContext()
	opts := DefaultOptions()
	cx.Compile(benchSrc, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cx.Compile(benchSrc, opts)
		if !res.OK {
			b.Fatal("compile failed")
		}
	}
}
