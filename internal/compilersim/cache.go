package compilersim

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"
)

// mutantCache memoizes Compile results keyed by (flags, source). The
// fuzzers re-derive identical mutants constantly — the same mutator at
// the same site on the same pool program is a common draw — and compile
// is a pure function of its inputs, so a cached Result is
// indistinguishable from a fresh one. Results are shared by pointer:
// every consumer (fuzzers, engine merge, triage) treats Coverage,
// Diagnostics and Object as read-only, which the engine's race gate
// exercises.
//
// Eviction is LRU over a bounded list; the zero Compiler has no cache
// and behaves exactly as before.
type mutantCache struct {
	mu  sync.Mutex
	cap int
	m   map[[32]byte]*list.Element
	lru *list.List // front = most recently used

	hits, misses atomic.Int64
}

type mutantEntry struct {
	key [32]byte
	res Result
}

func newMutantCache(capacity int) *mutantCache {
	return &mutantCache{
		cap: capacity,
		m:   make(map[[32]byte]*list.Element, capacity),
		lru: list.New(),
	}
}

func mutantKey(src string, opts Options) [32]byte {
	h := sha256.New()
	h.Write([]byte(opts.FlagString()))
	h.Write([]byte{0})
	h.Write([]byte(src))
	var k [32]byte
	h.Sum(k[:0])
	return k
}

func (mc *mutantCache) get(k [32]byte) (Result, bool) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	el, ok := mc.m[k]
	if !ok {
		mc.misses.Add(1)
		return Result{}, false
	}
	mc.lru.MoveToFront(el)
	mc.hits.Add(1)
	return el.Value.(*mutantEntry).res, true
}

func (mc *mutantCache) put(k [32]byte, res Result) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if _, dup := mc.m[k]; dup {
		return
	}
	mc.m[k] = mc.lru.PushFront(&mutantEntry{key: k, res: res})
	if mc.lru.Len() > mc.cap {
		oldest := mc.lru.Back()
		mc.lru.Remove(oldest)
		delete(mc.m, oldest.Value.(*mutantEntry).key)
	}
}

// EnableMutantCache attaches a bounded LRU of Compile results to the
// compiler. capacity <= 0 disables caching (the default state).
func (c *Compiler) EnableMutantCache(capacity int) {
	if capacity <= 0 {
		c.cache = nil
		return
	}
	c.cache = newMutantCache(capacity)
}

// CacheStats returns cumulative mutant-cache hit and miss counts
// (zeroes when the cache is disabled).
func (c *Compiler) CacheStats() (hits, misses int64) {
	if c.cache == nil {
		return 0, 0
	}
	return c.cache.hits.Load(), c.cache.misses.Load()
}
