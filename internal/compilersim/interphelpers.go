package compilersim

import (
	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
)

// parseAndCheckSrc is the interpreter's front-end entry.
func parseAndCheckSrc(src string) (*cast.TranslationUnit, error) {
	return cast.ParseAndCheck(src)
}

// nopTrace returns a tracer into a throwaway map.
func nopTrace() *cover.Tracer {
	return cover.NewTracer(cover.NewMap(), "nop")
}
