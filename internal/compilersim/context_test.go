package compilersim

import (
	"reflect"
	"testing"

	"github.com/icsnju/metamut-go/internal/seeds"
)

// contextCorpus mixes the paths a fuzz campaign actually exercises:
// clean seeds (full pipeline), truncated seeds (parse errors), corrupted
// seeds (lex/sema errors), and the empty program.
func contextCorpus() []string {
	pool := seeds.Generate(16, 11)
	corpus := append([]string{}, pool...)
	for _, src := range pool[:6] {
		if len(src) > 20 {
			corpus = append(corpus, src[:len(src)/2]) // mid-token truncation
		}
		corpus = append(corpus, src+"\n@#$ garbage ;;;")
		corpus = append(corpus, "int main() { return undeclared_name; }\n"+src)
	}
	return append(corpus, "", "int main() { return 0; }")
}

// TestContextCompileMatchesCompilerCompile pins the reusable-context
// fast path to the allocating reference path: for every corpus program
// and option set, Context.Compile must produce a Result identical in
// every field to Compiler.Compile — same diagnostics, same crash, same
// coverage bits, same generated object. The only sanctioned difference
// is ownership (the context's Result is borrowed until its next
// Compile), which is why each pair is compared before the context is
// reused.
func TestContextCompileMatchesCompilerCompile(t *testing.T) {
	comp := New("gcc", 14)
	cx := comp.NewContext()
	optionSets := []Options{
		{OptLevel: 0},
		DefaultOptions(),
		{OptLevel: 3, DisabledPasses: []string{"loopvec"}},
	}
	// The reusable context truncates its instruction buffer to length
	// zero where a fresh compile leaves it nil (an empty translation
	// unit); the two are the same object code, so fold them together
	// before the deep comparison.
	normalize := func(r *Result) {
		if r.Object != nil && len(r.Object.Instrs) == 0 {
			r.Object.Instrs = nil
		}
	}
	for _, opts := range optionSets {
		for i, src := range contextCorpus() {
			want := comp.Compile(src, opts)
			got := cx.Compile(src, opts)
			normalize(&want)
			normalize(&got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("corpus[%d] %s: context result diverged from compiler result\n got %+v\nwant %+v",
					i, opts.FlagString(), got, want)
			}
		}
	}
}

// TestContextCompileBorrowIsStable pins the borrow contract's useful
// half: the returned Result is valid until the next Compile on the same
// context, so a caller may read coverage and crash data from compile i
// before issuing compile i+1, and reuse must not leak state between
// programs (a dirty arena or token buffer would desynchronize the
// coverage bits from the reference path above).
func TestContextCompileBorrowIsStable(t *testing.T) {
	comp := New("gcc", 14)
	cx := comp.NewContext()
	opts := DefaultOptions()
	corpus := contextCorpus()
	for i, src := range corpus {
		res := cx.Compile(src, opts)
		cov := res.Coverage.Clone()
		again := cx.Compile(src, opts)
		if !reflect.DeepEqual(again.Coverage, cov) {
			t.Fatalf("corpus[%d]: recompiling the same program on the same context changed coverage", i)
		}
	}
}
