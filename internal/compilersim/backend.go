package compilersim

import (
	"fmt"

	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/compilersim/ir"
)

// AsmOp is a pseudo machine instruction kind (x86-64-flavoured).
type AsmOp int

// Pseudo machine ops.
const (
	AMov AsmOp = iota
	AAdd
	ASub
	AIMul
	AIDiv
	AShl
	AShr
	AAnd
	AOr
	AXor
	ANeg
	ANot
	ACmp
	ASet
	ALea
	ALoad
	AStore
	ACall
	ARet
	AJmp
	AJcc
	AJmpTable
	AVecOp
	ASpill
	AReload
)

var asmNames = [...]string{
	AMov: "mov", AAdd: "add", ASub: "sub", AIMul: "imul", AIDiv: "idiv",
	AShl: "shl", AShr: "shr", AAnd: "and", AOr: "or", AXor: "xor",
	ANeg: "neg", ANot: "not", ACmp: "cmp", ASet: "set", ALea: "lea",
	ALoad: "load", AStore: "store", ACall: "call", ARet: "ret",
	AJmp: "jmp", AJcc: "jcc", AJmpTable: "jmptable", AVecOp: "vecop",
	ASpill: "spill", AReload: "reload",
}

// String returns the mnemonic.
func (a AsmOp) String() string { return asmNames[a] }

// AsmInstr is a single emitted machine instruction.
type AsmInstr struct {
	Op  AsmOp
	Reg int // destination register (or -1)
}

// Object is the back-end's output for one translation unit.
type Object struct {
	Instrs   []AsmInstr
	Spills   int
	Funcs    int
	TextSize int
}

// numRegs is the size of the simulated general-purpose register file.
const numRegs = 8

// codegen is the reusable back-end state: one per compile context,
// recycled across compilations. The Object it produces is borrowed —
// valid only until the next generate call.
type codegen struct {
	obj   Object
	trace *cover.Tracer
	feats Features

	// Per-function scratch, reused across functions and compilations.
	linear []ir.Instr
	ivEnd  []int // last-use index per temp ID; -1 = unseen
	regOf  []int // assigned register per temp ID; -1 = unassigned
}

// GenerateCode lowers an optimized IR program into pseudo machine code:
// per-instruction selection, linear-scan register allocation with
// spilling, and a peephole cleanup. The returned object is freshly
// allocated and owned by the caller (per-stream contexts use
// codegen.generate and borrow instead).
func GenerateCode(prog *ir.Program, trace *cover.Tracer, feats Features) *Object {
	cg := &codegen{}
	out := *cg.generate(prog, trace, feats)
	out.Instrs = append([]AsmInstr(nil), out.Instrs...)
	return &out
}

// generate resets the codegen and lowers prog, returning the recycled
// object (borrowed: valid until the next generate on this codegen).
func (cg *codegen) generate(prog *ir.Program, trace *cover.Tracer, feats Features) *Object {
	cg.obj = Object{Instrs: cg.obj.Instrs[:0]}
	cg.trace = trace
	cg.feats = feats
	for _, f := range prog.Funcs {
		cg.genFuncCode(f)
	}
	cg.obj.TextSize = len(cg.obj.Instrs) * 4
	trace.HitN("be.textsize", cg.obj.TextSize%101)
	return &cg.obj
}

// intScratch returns buf resized to n entries, all set to -1, reusing
// capacity.
func intScratch(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = -1
	}
	return buf
}

// touchTemp records v's last use position in the interval table.
func touchTemp(ivEnd []int, v ir.Value, pos int) {
	if v.Kind == ir.VTemp && v.ID >= 0 && v.ID < int64(len(ivEnd)) {
		ivEnd[v.ID] = pos
	}
}

func (cg *codegen) emitAsm(op AsmOp, reg int) {
	cg.obj.Instrs = append(cg.obj.Instrs, AsmInstr{Op: op, Reg: reg})
	cg.trace.HitNHash(beSiteHash[op], reg+1)
}

func (cg *codegen) genFuncCode(f *ir.Func) {
	obj := &cg.obj
	obj.Funcs++
	// Linear-scan register allocation: compute last-use per temp over the
	// linearized instruction stream, then assign registers greedily.
	// Temp IDs are dense (0..NextTemp), so intervals and register
	// assignments live in flat slices instead of maps.
	ivEnd := intScratch(cg.ivEnd, f.NextTemp)
	cg.ivEnd = ivEnd
	linear := cg.linear[:0]
	for _, b := range f.Blocks {
		if !b.Reachable && len(b.Instrs) == 0 {
			continue
		}
		for i := range b.Instrs {
			in := b.Instrs[i]
			pos := len(linear)
			touchTemp(ivEnd, in.Dst, pos)
			touchTemp(ivEnd, in.A, pos)
			touchTemp(ivEnd, in.B, pos)
			touchTemp(ivEnd, in.C, pos)
			for _, a := range in.Args {
				touchTemp(ivEnd, a, pos)
			}
			linear = append(linear, in)
		}
	}
	cg.linear = linear
	// Greedy allocation.
	regOf := intScratch(cg.regOf, f.NextTemp)
	cg.regOf = regOf
	freeAt := [numRegs]int{}
	spills := 0
	for i := range linear {
		in := &linear[i]
		if in.Dst.Kind == ir.VTemp && in.Dst.ID < int64(len(regOf)) {
			if regOf[in.Dst.ID] < 0 {
				reg := -1
				for r := 0; r < numRegs; r++ {
					if freeAt[r] <= i {
						reg = r
						break
					}
				}
				if reg < 0 {
					spills++
					cg.trace.HitN("be.spill", spills%19)
					reg = i % numRegs // evict
				}
				regOf[in.Dst.ID] = reg
				if end := ivEnd[in.Dst.ID]; end >= 0 {
					freeAt[reg] = end + 1
				}
			}
		}
	}
	obj.Spills += spills
	if spills > 6 {
		cg.feats.Add("be.highpressure")
	}
	// Instruction selection.
	for i := range linear {
		in := &linear[i]
		reg := -1
		if in.Dst.Kind == ir.VTemp && in.Dst.ID < int64(len(regOf)) {
			reg = regOf[in.Dst.ID]
		}
		switch in.Op {
		case ir.OpConst, ir.OpCopy:
			cg.emitAsm(AMov, reg)
		case ir.OpAdd:
			cg.emitAsm(AAdd, reg)
		case ir.OpSub:
			cg.emitAsm(ASub, reg)
		case ir.OpMul:
			cg.emitAsm(AIMul, reg)
		case ir.OpDiv, ir.OpRem:
			cg.emitAsm(AIDiv, reg)
			cg.feats.Add("be.div")
		case ir.OpShl:
			cg.emitAsm(AShl, reg)
		case ir.OpShr:
			cg.emitAsm(AShr, reg)
		case ir.OpAnd:
			cg.emitAsm(AAnd, reg)
		case ir.OpOr:
			cg.emitAsm(AOr, reg)
		case ir.OpXor:
			cg.emitAsm(AXor, reg)
		case ir.OpNeg:
			cg.emitAsm(ANeg, reg)
		case ir.OpNot:
			cg.emitAsm(ANot, reg)
		case ir.OpLNot:
			cg.emitAsm(ACmp, reg)
			cg.emitAsm(ASet, reg)
		case ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
			cg.emitAsm(ACmp, reg)
			cg.emitAsm(ASet, reg)
		case ir.OpLoad:
			cg.emitAsm(ALoad, reg)
		case ir.OpStore:
			cg.emitAsm(AStore, -1)
		case ir.OpAddr:
			cg.emitAsm(ALea, reg)
		case ir.OpCall:
			cg.emitAsm(ACall, reg)
		case ir.OpRet:
			cg.emitAsm(ARet, -1)
		case ir.OpBr:
			cg.emitAsm(AJmp, -1)
		case ir.OpCondBr:
			cg.emitAsm(ACmp, -1)
			cg.emitAsm(AJcc, -1)
		case ir.OpSwitch:
			if len(in.Cases) >= 5 {
				cg.emitAsm(AJmpTable, -1)
				cg.feats.Add("be.jumptable")
				cg.trace.HitN("be.jumptable", len(in.Cases)%31)
			} else {
				for range in.Cases {
					cg.emitAsm(ACmp, -1)
					cg.emitAsm(AJcc, -1)
				}
			}
		case ir.OpConvert:
			cg.emitAsm(AMov, reg)
		case ir.OpVecAdd, ir.OpVecMul:
			cg.emitAsm(AVecOp, reg)
			cg.feats.Add("be.vec")
		case ir.OpStrLen:
			cg.emitAsm(ACall, reg)
		}
	}
	// Peephole: drop adjacent redundant movs to the same register.
	cleaned := obj.Instrs[:0]
	var prev *AsmInstr
	removed := 0
	for i := range obj.Instrs {
		in := obj.Instrs[i]
		if prev != nil && prev.Op == AMov && in.Op == AMov && prev.Reg == in.Reg && in.Reg >= 0 {
			removed++
			continue
		}
		cleaned = append(cleaned, in)
		prev = &cleaned[len(cleaned)-1]
	}
	obj.Instrs = cleaned
	if removed > 0 {
		cg.trace.HitN("be.peephole", removed%13)
	}
}

// DumpAsm renders the object for debugging.
func DumpAsm(obj *Object) string {
	s := ""
	for _, in := range obj.Instrs {
		if in.Reg >= 0 {
			s += fmt.Sprintf("%s r%d\n", in.Op, in.Reg)
		} else {
			s += in.Op.String() + "\n"
		}
	}
	return s
}
