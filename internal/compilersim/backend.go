package compilersim

import (
	"fmt"

	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/compilersim/ir"
)

// AsmOp is a pseudo machine instruction kind (x86-64-flavoured).
type AsmOp int

// Pseudo machine ops.
const (
	AMov AsmOp = iota
	AAdd
	ASub
	AIMul
	AIDiv
	AShl
	AShr
	AAnd
	AOr
	AXor
	ANeg
	ANot
	ACmp
	ASet
	ALea
	ALoad
	AStore
	ACall
	ARet
	AJmp
	AJcc
	AJmpTable
	AVecOp
	ASpill
	AReload
)

var asmNames = [...]string{
	AMov: "mov", AAdd: "add", ASub: "sub", AIMul: "imul", AIDiv: "idiv",
	AShl: "shl", AShr: "shr", AAnd: "and", AOr: "or", AXor: "xor",
	ANeg: "neg", ANot: "not", ACmp: "cmp", ASet: "set", ALea: "lea",
	ALoad: "load", AStore: "store", ACall: "call", ARet: "ret",
	AJmp: "jmp", AJcc: "jcc", AJmpTable: "jmptable", AVecOp: "vecop",
	ASpill: "spill", AReload: "reload",
}

// String returns the mnemonic.
func (a AsmOp) String() string { return asmNames[a] }

// AsmInstr is a single emitted machine instruction.
type AsmInstr struct {
	Op  AsmOp
	Reg int // destination register (or -1)
}

// Object is the back-end's output for one translation unit.
type Object struct {
	Instrs   []AsmInstr
	Spills   int
	Funcs    int
	TextSize int
}

// numRegs is the size of the simulated general-purpose register file.
const numRegs = 8

// GenerateCode lowers an optimized IR program into pseudo machine code:
// per-instruction selection, linear-scan register allocation with
// spilling, and a peephole cleanup.
func GenerateCode(prog *ir.Program, trace *cover.Tracer, feats Features) *Object {
	obj := &Object{}
	for _, f := range prog.Funcs {
		genFuncCode(f, obj, trace, feats)
	}
	obj.TextSize = len(obj.Instrs) * 4
	trace.HitN("be.textsize", obj.TextSize%101)
	return obj
}

func genFuncCode(f *ir.Func, obj *Object, trace *cover.Tracer, feats Features) {
	obj.Funcs++
	// Linear-scan register allocation: compute last-use per temp over the
	// linearized instruction stream, then assign registers greedily.
	type interval struct{ start, end int }
	intervals := map[int64]*interval{}
	idx := 0
	var linear []ir.Instr
	for _, b := range f.Blocks {
		if !b.Reachable && len(b.Instrs) == 0 {
			continue
		}
		for _, in := range b.Instrs {
			touch := func(v ir.Value) {
				if v.Kind != ir.VTemp {
					return
				}
				iv := intervals[v.ID]
				if iv == nil {
					intervals[v.ID] = &interval{idx, idx}
				} else {
					iv.end = idx
				}
			}
			touch(in.Dst)
			touch(in.A)
			touch(in.B)
			touch(in.C)
			for _, a := range in.Args {
				touch(a)
			}
			linear = append(linear, in)
			idx++
		}
	}
	// Greedy allocation.
	regOf := map[int64]int{}
	freeAt := [numRegs]int{}
	spills := 0
	for i, in := range linear {
		if in.Dst.Kind == ir.VTemp {
			if _, assigned := regOf[in.Dst.ID]; !assigned {
				reg := -1
				for r := 0; r < numRegs; r++ {
					if freeAt[r] <= i {
						reg = r
						break
					}
				}
				if reg < 0 {
					spills++
					trace.HitN("be.spill", spills%19)
					reg = i % numRegs // evict
				}
				regOf[in.Dst.ID] = reg
				if iv := intervals[in.Dst.ID]; iv != nil {
					freeAt[reg] = iv.end + 1
				}
			}
		}
	}
	obj.Spills += spills
	if spills > 6 {
		feats.Add("be.highpressure")
	}
	// Instruction selection.
	emit := func(op AsmOp, reg int) {
		obj.Instrs = append(obj.Instrs, AsmInstr{Op: op, Reg: reg})
		trace.HitN("be."+op.String(), reg+1)
	}
	for _, in := range linear {
		reg := -1
		if in.Dst.Kind == ir.VTemp {
			reg = regOf[in.Dst.ID]
		}
		switch in.Op {
		case ir.OpConst, ir.OpCopy:
			emit(AMov, reg)
		case ir.OpAdd:
			emit(AAdd, reg)
		case ir.OpSub:
			emit(ASub, reg)
		case ir.OpMul:
			emit(AIMul, reg)
		case ir.OpDiv, ir.OpRem:
			emit(AIDiv, reg)
			feats.Add("be.div")
		case ir.OpShl:
			emit(AShl, reg)
		case ir.OpShr:
			emit(AShr, reg)
		case ir.OpAnd:
			emit(AAnd, reg)
		case ir.OpOr:
			emit(AOr, reg)
		case ir.OpXor:
			emit(AXor, reg)
		case ir.OpNeg:
			emit(ANeg, reg)
		case ir.OpNot:
			emit(ANot, reg)
		case ir.OpLNot:
			emit(ACmp, reg)
			emit(ASet, reg)
		case ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
			emit(ACmp, reg)
			emit(ASet, reg)
		case ir.OpLoad:
			emit(ALoad, reg)
		case ir.OpStore:
			emit(AStore, -1)
		case ir.OpAddr:
			emit(ALea, reg)
		case ir.OpCall:
			emit(ACall, reg)
		case ir.OpRet:
			emit(ARet, -1)
		case ir.OpBr:
			emit(AJmp, -1)
		case ir.OpCondBr:
			emit(ACmp, -1)
			emit(AJcc, -1)
		case ir.OpSwitch:
			if len(in.Cases) >= 5 {
				emit(AJmpTable, -1)
				feats.Add("be.jumptable")
				trace.HitN("be.jumptable", len(in.Cases)%31)
			} else {
				for range in.Cases {
					emit(ACmp, -1)
					emit(AJcc, -1)
				}
			}
		case ir.OpConvert:
			emit(AMov, reg)
		case ir.OpVecAdd, ir.OpVecMul:
			emit(AVecOp, reg)
			feats.Add("be.vec")
		case ir.OpStrLen:
			emit(ACall, reg)
		}
	}
	// Peephole: drop adjacent redundant movs to the same register.
	cleaned := obj.Instrs[:0]
	var prev *AsmInstr
	removed := 0
	for i := range obj.Instrs {
		in := obj.Instrs[i]
		if prev != nil && prev.Op == AMov && in.Op == AMov && prev.Reg == in.Reg && in.Reg >= 0 {
			removed++
			continue
		}
		cleaned = append(cleaned, in)
		prev = &cleaned[len(cleaned)-1]
	}
	obj.Instrs = cleaned
	if removed > 0 {
		trace.HitN("be.peephole", removed%13)
	}
}

// DumpAsm renders the object for debugging.
func DumpAsm(obj *Object) string {
	s := ""
	for _, in := range obj.Instrs {
		if in.Reg >= 0 {
			s += fmt.Sprintf("%s r%d\n", in.Op, in.Reg)
		} else {
			s += in.Op.String() + "\n"
		}
	}
	return s
}
