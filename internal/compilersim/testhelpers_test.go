package compilersim

import (
	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
)

// parseChecked is a test helper wrapping the front-end.
func parseChecked(src string) (*cast.TranslationUnit, error) {
	return cast.ParseAndCheck(src)
}

// nopTracer returns a tracer into a throwaway map.
func nopTracer() *cover.Tracer {
	return cover.NewTracer(cover.NewMap(), "test")
}
