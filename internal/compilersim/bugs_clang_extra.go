package compilersim

import (
	"fmt"
	"strings"
)

// clangExtraBugs extends the Clang corpus so its module distribution
// matches Table 6's shape (Clang's front-end and back-end dominate its
// bug population, and Clang's total exceeds GCC's). The variants are
// parameterized combinations over the same feature vocabulary as the
// hand-written entries, each with distinct stack frames.
func clangExtraBugs() []Bug {
	var bugs []Bug

	// Eight further front-end defects (total 20 vs GCC's 16), several of
	// them error-recovery crashes reachable from invalid inputs.
	feVariants := []struct {
		id, f1, f2, msg string
		kind            CrashKind
		trig            func(*TriggerCtx) bool
	}{
		{"clang-fe-13", "clang::Parser::ParseStatementOrDeclaration",
			"clang::Parser::ParseExprStatement",
			"statement depth bookkeeping", AssertionFailure,
			func(tc *TriggerCtx) bool { return maxBraceDepth(tc.Source) >= 28 }},
		{"clang-fe-14", "clang::Sema::ActOnCaseStmt",
			"clang::Sema::ActOnFinishSwitchStmt",
			"case value folding on error", AssertionFailure,
			func(tc *TriggerCtx) bool {
				return strings.Count(tc.Source, "case") >= 30
			}},
		{"clang-fe-15", "clang::Sema::BuildBinOp",
			"clang::Sema::CreateBuiltinBinOp",
			"binop rebuild during recovery", AssertionFailure,
			func(tc *TriggerCtx) bool {
				return !tc.CheckOK && strings.Count(tc.Source, "<<") >= 6
			}},
		{"clang-fe-16", "clang::Lexer::SkipBlockComment",
			"clang::Lexer::LexTokenInternal",
			"unterminated block comment at EOF", SegmentationFault,
			func(tc *TriggerCtx) bool {
				return !tc.ParseOK && strings.Contains(tc.Source, "/*") &&
					!strings.Contains(tc.Source, "*/")
			}},
		{"clang-fe-17", "clang::Sema::ActOnIdExpression",
			"clang::Sema::DiagnoseEmptyLookup",
			"typo correction over many unknowns", AssertionFailure,
			func(tc *TriggerCtx) bool {
				return tc.ParseOK && !tc.CheckOK && longestIdent(tc.Source) >= 60
			}},
		{"clang-fe-18", "clang::Parser::ParseCompoundLiteralExpression",
			"clang::Sema::BuildCompoundLiteralExpr",
			"compound literal in error context", AssertionFailure,
			func(tc *TriggerCtx) bool {
				return !tc.CheckOK && strings.Contains(tc.Source, "){")
			}},
		{"clang-fe-19", "clang::Sema::CheckImplicitConversion",
			"clang::Sema::DiagnoseImpCast",
			"impcast diag on huge literal chain", AssertionFailure,
			func(tc *TriggerCtx) bool {
				return strings.Count(tc.Source, "2147483647") >= 3
			}},
		{"clang-fe-20", "clang::Parser::ParseGotoStatement",
			"clang::Sema::ActOnAddrLabel",
			"label address in broken scope", SegmentationFault,
			func(tc *TriggerCtx) bool {
				return !tc.CheckOK && strings.Count(tc.Source, "goto") >= 7
			}},
	}
	for _, v := range feVariants {
		bugs = append(bugs, frontBug(v.id, v.kind, v.f1, v.f2, v.msg, v.trig))
	}

	// Eight further IR-generation defects (total 18).
	irVariants := []struct {
		id, f1, f2, msg string
		kind            CrashKind
		trig            func(*TriggerCtx) bool
	}{
		{"clang-ir-11", "clang::CodeGen::CodeGenFunction::EmitBinaryOperator",
			"clang::CodeGen::ScalarExprEmitter::EmitBinOps",
			"float/int mixed reduction chain", AssertionFailure,
			func(tc *TriggerCtx) bool {
				return tc.Feats["expr.floatarith"] >= 9 && tc.Feats["expr.call"] >= 2
			}},
		{"clang-ir-12", "clang::CodeGen::CodeGenFunction::EmitDoStmt",
			"clang::CodeGen::CodeGenFunction::EmitBranchThroughCleanup",
			"do-while cleanup scope", AssertionFailure,
			func(tc *TriggerCtx) bool {
				return tc.Feats["loop.do"] >= 3 && tc.Feats.Has("stmt.goto")
			}},
		{"clang-ir-13", "clang::CodeGen::CodeGenFunction::EmitArraySubscriptExpr",
			"clang::CodeGen::CodeGenFunction::EmitCheckedLValue",
			"nested subscript of cast base", AssertionFailure,
			func(tc *TriggerCtx) bool {
				return tc.Feats["local.array"] >= 5 && tc.Feats["expr.cast"] >= 5
			}},
		{"clang-ir-14", "clang::CodeGen::CodeGenFunction::EmitCompoundStmt",
			"clang::CodeGen::CodeGenFunction::EmitStopPoint",
			"deep block nesting stop points", AssertionFailure,
			func(tc *TriggerCtx) bool { return maxBraceDepth(tc.Source) >= 16 && tc.CheckOK }},
		{"clang-ir-15", "clang::CodeGen::CodeGenModule::EmitTopLevelDecl",
			"clang::CodeGen::CodeGenModule::EmitGlobal",
			"many static wrappers", AssertionFailure,
			func(tc *TriggerCtx) bool {
				return tc.Feats["fn.count"] >= 10 && strings.Count(tc.Source, "static") >= 8
			}},
		{"clang-ir-16", "clang::CodeGen::CodeGenFunction::EmitConditionalOperator",
			"clang::CodeGen::CodeGenFunction::EmitBranchToCounterBlock",
			"conditional chain counter blocks", AssertionFailure,
			func(tc *TriggerCtx) bool { return tc.Feats["expr.conditional"] >= 10 }},
		{"clang-ir-17", "clang::CodeGen::CodeGenFunction::EmitUnaryOperator",
			"clang::CodeGen::ScalarExprEmitter::VisitUnaryLNot",
			"negation tower emission", AssertionFailure,
			func(tc *TriggerCtx) bool {
				return strings.Count(tc.Source, "!!") >= 3 ||
					strings.Count(tc.Source, "~~") >= 3
			}},
		{"clang-ir-18", "clang::CodeGen::CodeGenFunction::EmitStoreThroughLValue",
			"clang::CodeGen::CodeGenFunction::EmitStoreOfScalar",
			"store through reinterpreted member", SegmentationFault,
			func(tc *TriggerCtx) bool {
				return tc.Feats["expr.member"] >= 6 && tc.Feats.Has("expr.addrof") &&
					tc.Feats["expr.cast"] >= 3
			}},
	}
	for _, v := range irVariants {
		bugs = append(bugs, deepBug(IRGen, v.id, v.kind, 0, v.f1, v.f2, v.msg, v.trig))
	}

	// Two further optimizer defects (total 5).
	bugs = append(bugs,
		deepBug(Opt, "clang-opt-4", AssertionFailure, 2,
			"llvm::SROAPass::runOnAlloca", "llvm::sroa::AllocaSliceRewriter::visit",
			"slice rewrite of decayed aggregate",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("local.struct") && tc.Feats["opt.folded"] >= 12
			}),
		deepBug(Opt, "clang-opt-5", AssertionFailure, 2,
			"llvm::JumpThreadingPass::processBlock", "llvm::JumpThreadingPass::threadEdge",
			"thread through folded switch arm",
			func(tc *TriggerCtx) bool {
				return tc.Feats["switch.arms"] >= 7 && tc.Feats["opt.deadbranch"] >= 3
			}),
	)

	// Three further back-end defects (total 9 vs GCC's 2 — Clang's
	// back-end dominates its crash population in Table 6).
	bugs = append(bugs,
		deepBug(BackEnd, "clang-be-7", AssertionFailure, 2,
			"llvm::ScheduleDAGRRList::Schedule", "llvm::ScheduleDAGSDNodes::BuildSchedGraph",
			"scheduling dag over vec ops",
			func(tc *TriggerCtx) bool {
				return tc.Feats["be.vec"] >= 3 && tc.Feats.Has("be.div")
			}),
		deepBug(BackEnd, "clang-be-8", AssertionFailure, 2,
			"llvm::X86FrameLowering::emitPrologue", "llvm::MachineFrameInfo::estimateStackSize",
			"frame estimate with many spills",
			func(tc *TriggerCtx) bool { return tc.Feats["be.highpressure"] >= 2 }),
		deepBug(BackEnd, "clang-be-9", SegmentationFault, 2,
			"llvm::BranchFolder::OptimizeFunction", "llvm::BranchFolder::TailMergeBlocks",
			"tail merge of emptied blocks",
			func(tc *TriggerCtx) bool {
				return tc.Feats["opt.deadblock"] >= 6 && tc.Feats.Has("be.jumptable")
			}),
	)
	return bugs
}

var _ = fmt.Sprintf
