package compilersim

import (
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim/ir"
)

func TestLowerSwitchDispatch(t *testing.T) {
	prog := lowered(t, `
int f(int x) {
    int r = 0;
    switch (x) {
    case 1: r = 10; break;
    case 2: r = 20; /* fallthrough */
    case 3: r = 30; break;
    default: r = 99; break;
    }
    return r;
}
int main(void) { return f(2); }
`)
	f := prog.FuncByName("f")
	var sw *ir.Instr
	var swBlock *ir.Block
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpSwitch {
				sw = &b.Instrs[i]
				swBlock = b
			}
		}
	}
	if sw == nil {
		t.Fatal("no switch dispatch emitted")
	}
	if len(sw.Cases) != 3 {
		t.Errorf("cases = %v, want 3 values", sw.Cases)
	}
	// 3 case targets + default.
	if len(swBlock.Succs) != 4 {
		t.Errorf("dispatch successors = %d, want 4", len(swBlock.Succs))
	}
}

func TestLowerShortCircuit(t *testing.T) {
	prog := lowered(t, `
int g(void);
int f(int a) { return a > 0 && g() > 1; }
int main(void) { return f(1); }
`)
	f := prog.FuncByName("f")
	// Short-circuit lowering introduces a conditional branch before the
	// call: on the false arm, g must not run.
	sawCondBeforeCall := false
	callSeen := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Callee == "g" {
				callSeen = true
			}
			if in.Op == ir.OpCondBr && !callSeen {
				sawCondBeforeCall = true
			}
		}
	}
	if !callSeen {
		t.Fatal("call to g not lowered")
	}
	if !sawCondBeforeCall {
		t.Error("no branch guards the right-hand side: && not short-circuited")
	}
}

func TestLowerGotoResolvesForward(t *testing.T) {
	prog := lowered(t, `
int f(int n) {
    if (n > 0) goto out;
    n = -n;
out:
    return n;
}
int main(void) { return f(-3); }
`)
	f := prog.FuncByName("f")
	// Every successor reference must resolve within the function.
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if s < 0 || s >= len(f.Blocks) {
				t.Fatalf("goto produced dangling successor %d", s)
			}
		}
	}
}

func TestLowerGlobalsAndStrings(t *testing.T) {
	prog := lowered(t, `
int counter;
const char greeting[6] = "hello";
int main(void) {
    const char *p = "world";
    counter = (int)strlen(p);
    return counter;
}
`)
	if len(prog.Globals) < 3 { // counter, greeting, interned "world"
		t.Fatalf("globals = %d, want >= 3", len(prog.Globals))
	}
	var interned *ir.Global
	for i := range prog.Globals {
		if prog.Globals[i].NulTerminated {
			interned = &prog.Globals[i]
		}
	}
	if interned == nil {
		t.Fatal("string literal not interned as NUL-terminated global")
	}
	if interned.Size != 6 { // "world" + NUL
		t.Errorf("interned size = %d, want 6", interned.Size)
	}
}

func TestLowerCompoundAssignLoadOpStore(t *testing.T) {
	prog := lowered(t, `
int g;
int main(void) { g += 5; return g; }
`)
	f := prog.FuncByName("main")
	var seq []ir.Op
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			seq = append(seq, in.Op)
		}
	}
	// Expect load, add, store somewhere in order.
	idx := func(op ir.Op, from int) int {
		for i := from; i < len(seq); i++ {
			if seq[i] == op {
				return i
			}
		}
		return -1
	}
	l := idx(ir.OpLoad, 0)
	a := idx(ir.OpAdd, l+1)
	s := idx(ir.OpStore, a+1)
	if l < 0 || a < 0 || s < 0 {
		t.Fatalf("compound assignment sequence wrong: %v", seq)
	}
}

func TestLowerFieldOffsets(t *testing.T) {
	prog := lowered(t, `
struct mix { char c; int i; char d; };
struct mix g;
int main(void) {
    g.c = 1;
    g.i = 2;
    g.d = 3;
    return g.i;
}
`)
	f := prog.FuncByName("main")
	// The store offsets must reflect the padded layout: c@0, i@4, d@8.
	var offsets []int64
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore && in.B.Kind == ir.VConst {
				offsets = append(offsets, in.B.ID)
			}
		}
	}
	want := map[int64]bool{0: true, 4: true, 8: true}
	for _, o := range offsets {
		delete(want, o)
	}
	if len(want) != 0 {
		t.Errorf("field offsets %v missing from stores %v", want, offsets)
	}
}

func TestLowerBreakContinue(t *testing.T) {
	prog := lowered(t, `
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) {
        if (i == 3) continue;
        if (i == 7) break;
        s += i;
    }
    return s;
}
int main(void) { return f(10); }
`)
	f := prog.FuncByName("f")
	if len(f.Blocks) < 8 {
		t.Errorf("loop with break/continue lowered to only %d blocks", len(f.Blocks))
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if s < 0 || s >= len(f.Blocks) {
				t.Fatalf("dangling successor %d", s)
			}
		}
	}
}

func TestDumpAsm(t *testing.T) {
	prog := lowered(t, "int main(void) { return 1 + 2; }")
	obj := GenerateCode(prog, nopTracer(), Features{})
	asm := DumpAsm(obj)
	if asm == "" {
		t.Fatal("empty asm dump")
	}
}

func TestFeaturesHelpers(t *testing.T) {
	f := Features{}
	f.Add("x")
	f.Add("x")
	f.AddN("y", 5)
	if f["x"] != 2 || f["y"] != 5 {
		t.Errorf("feature counts wrong: %v", f)
	}
	if !f.Has("x") || f.Has("z") {
		t.Error("Has wrong")
	}
	names := FeatureNames(f)
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("names = %v", names)
	}
}

func TestOptionsFlagString(t *testing.T) {
	o := Options{OptLevel: 3, DisabledPasses: []string{"loopvec"}}
	if got := o.FlagString(); got != "-O3 -fno-loopvec" {
		t.Errorf("FlagString = %q", got)
	}
}
