package compilersim

import (
	"testing"

	"github.com/icsnju/metamut-go/internal/seeds"
)

// run executes src's main at the given optimization level.
func run(t *testing.T, src string, opt int) ExecResult {
	t.Helper()
	c := New("gcc", 14)
	res, exec := c.RunCompiled(src, Options{OptLevel: opt})
	if res.Crash != nil {
		t.Fatalf("compiler crashed on fixture: %v", res.Crash)
	}
	if !res.OK {
		t.Fatalf("fixture rejected: %v", res.Diagnostics)
	}
	return exec
}

func TestInterpArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"int main(void) { return 2 + 3 * 4; }", 14},
		{"int main(void) { return (2 + 3) * 4; }", 20},
		{"int main(void) { return 17 % 5; }", 2},
		{"int main(void) { return 1 << 4; }", 16},
		{"int main(void) { return 0xff & 0x0f; }", 15},
		{"int main(void) { return 5 > 3 ? 10 : 20; }", 10},
		{"int main(void) { return !0 + !5; }", 1},
		{"int main(void) { return ~0 + 2; }", 1},
		{"int main(void) { int a = -7; return -a; }", 7},
	}
	for _, tc := range cases {
		if got := run(t, tc.src, 0); got.Status != ExecOK || got.Return != tc.want {
			t.Errorf("%q => %v %d, want OK %d", tc.src, got.Status, got.Return, tc.want)
		}
	}
}

func TestInterpControlFlow(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{`int main(void) {
    int s = 0;
    int i;
    for (i = 1; i <= 10; i++) { s += i; }
    return s;
}`, 55},
		{`int main(void) {
    int n = 10;
    int c = 0;
    while (n > 1) { if (n % 2) { n = 3 * n + 1; } else { n = n / 2; } c++; }
    return c;
}`, 6},
		{`int main(void) {
    int x = 2;
    switch (x) {
    case 1: return 10;
    case 2: return 20;
    default: return 30;
    }
}`, 20},
		{`int main(void) {
    int i = 0;
    int s = 0;
    do { s += 5; i++; } while (i < 3);
    return s;
}`, 15},
		{`int main(void) {
    int n = 3;
    int acc = 0;
again:
    acc += n;
    n--;
    if (n > 0) goto again;
    return acc;
}`, 6},
		{`int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 10; i++) {
        if (i == 3) continue;
        if (i == 7) break;
        s += i;
    }
    return s;
}`, 0 + 1 + 2 + 4 + 5 + 6},
	}
	for _, tc := range cases {
		if got := run(t, tc.src, 0); got.Status != ExecOK || got.Return != tc.want {
			t.Errorf("program => %v %d, want OK %d\n%s",
				got.Status, got.Return, tc.want, tc.src)
		}
	}
}

func TestInterpFunctionsAndRecursion(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(10); }
`
	if got := run(t, src, 0); got.Status != ExecOK || got.Return != 55 {
		t.Fatalf("fib(10) => %v %d", got.Status, got.Return)
	}
}

func TestInterpGlobalsAndArrays(t *testing.T) {
	src := `
int acc[8];
int g;
int main(void) {
    int i;
    for (i = 0; i < 8; i++) { acc[i] = i * i; }
    g = acc[3] + acc[7];
    return g;
}
`
	if got := run(t, src, 0); got.Status != ExecOK || got.Return != 9+49 {
		t.Fatalf("arrays => %v %d, want 58", got.Status, got.Return)
	}
}

func TestInterpStructsAndPointers(t *testing.T) {
	src := `
struct pt { int x; int y; };
int main(void) {
    struct pt p;
    int *q;
    p.x = 11;
    p.y = 31;
    q = &p.x;
    *q = *q + 1;
    return p.x + p.y;
}
`
	if got := run(t, src, 0); got.Status != ExecOK || got.Return != 43 {
		t.Fatalf("struct/ptr => %v %d (%s), want 43",
			got.Status, got.Return, got.TrapMsg)
	}
}

func TestInterpAbortTraps(t *testing.T) {
	src := `int main(void) { abort(); return 0; }`
	got := run(t, src, 0)
	if got.Status != ExecTrap || got.TrapMsg != "abort called" {
		t.Fatalf("abort => %v %q", got.Status, got.TrapMsg)
	}
}

func TestInterpInfiniteLoopTimesOut(t *testing.T) {
	src := `int main(void) { while (1) { } return 0; }`
	got := run(t, src, 0)
	if got.Status != ExecTimeout {
		t.Fatalf("infinite loop => %v", got.Status)
	}
}

func TestInterpDivisionByZeroTraps(t *testing.T) {
	src := `int main(void) { int z = 0; return 5 / z; }`
	got := run(t, src, 0)
	if got.Status != ExecTrap {
		t.Fatalf("div0 => %v %d", got.Status, got.Return)
	}
}

// TestDifferentialO0vsO2 is the headline property: the optimizer must be
// semantics-preserving. Every seed program that terminates cleanly must
// produce identical results at -O0 and -O2.
func TestDifferentialO0vsO2(t *testing.T) {
	c := New("gcc", 14)
	clang := New("clang", 18)
	corpus := seeds.Generate(150, 99)
	checked := 0
	for i, src := range corpus {
		res0, e0 := c.RunCompiled(src, Options{OptLevel: 0})
		if !res0.OK {
			continue // crashed the compiler or rejected; not this test's job
		}
		res2, e2 := c.RunCompiled(src, Options{OptLevel: 2})
		if !res2.OK {
			continue
		}
		checked++
		if e0.Status != e2.Status || (e0.Status == ExecOK && e0.Return != e2.Return) {
			t.Errorf("seed %d: -O0 => %v/%d(%s)  -O2 => %v/%d(%s)\n%s",
				i, e0.Status, e0.Return, e0.TrapMsg,
				e2.Status, e2.Return, e2.TrapMsg, src)
		}
		// Cross-profile agreement (same IR semantics, different pass
		// order): clang -O2 must also agree.
		resC, eC := clang.RunCompiled(src, Options{OptLevel: 2})
		if resC.OK && (eC.Status != e0.Status ||
			(e0.Status == ExecOK && eC.Return != e0.Return)) {
			t.Errorf("seed %d: gcc/clang disagree: %v/%d vs %v/%d\n%s",
				i, e0.Status, e0.Return, eC.Status, eC.Return, src)
		}
	}
	if checked < 100 {
		t.Fatalf("only %d/150 seeds were executable", checked)
	}
	t.Logf("differentially checked %d seed programs", checked)
}
