package compilersim

import (
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/compilersim/ir"
)

// Pass is one optimizer pass over a function.
type Pass struct {
	Name string
	Run  func(o *optimizer, f *ir.Func)
	// site caches HashString("pass."+Name); zero means not yet computed
	// (hand-built pass lists in tests fall back to hashing per run).
	site uint32
}

// siteHash returns the pass's coverage-site hash without mutating p
// (pass slices may be shared across streams).
func (p *Pass) siteHash() uint32 {
	if p.site != 0 {
		return p.site
	}
	return cover.HashString("pass." + p.Name)
}

// initPassSites precomputes the per-pass coverage-site hashes. Call once
// on a freshly built pass list, before it is shared.
func initPassSites(passes []Pass) []Pass {
	for i := range passes {
		passes[i].site = cover.HashString("pass." + passes[i].Name)
	}
	return passes
}

// optimizer carries shared pass state. One optimizer per compile
// context, recycled across compilations: the scratch maps/slices below
// are cleared (not reallocated) per pass, which is where the optimizer's
// former per-mutant allocations lived.
type optimizer struct {
	trace *cover.Tracer
	feats Features
	prog  *ir.Program

	// Scratch, reused across passes and compilations.
	val    map[int64]ir.Value // copyProp: temp id -> known value
	cse2   map[cseKey]ir.Value
	reach  []bool
	stack  []int
	used   []bool
	loops  []loopInfo
	frames []dfsFrame
}

// cseKey identifies a pure computation for CSE: the operands are already
// canonicalized (commutative ops order A before B), so two instructions
// with equal keys compute the same value.
type cseKey struct {
	op    ir.Op
	a, b  ir.Value
	float bool
}

// initScratch allocates the optimizer's scratch maps (idempotent).
func (o *optimizer) initScratch() {
	if o.val == nil {
		o.val = map[int64]ir.Value{}
		o.cse2 = map[cseKey]ir.Value{}
	}
}

// StandardPasses is the -O2 pipeline shared by both profiles (the
// profiles order them differently; see profiles.go).
func StandardPasses() []Pass {
	return initPassSites([]Pass{
		{Name: "constfold", Run: (*optimizer).constFold},
		{Name: "copyprop", Run: (*optimizer).copyProp},
		{Name: "simplify", Run: (*optimizer).algebraicSimplify},
		{Name: "cse", Run: (*optimizer).cse},
		{Name: "dce", Run: (*optimizer).dce},
		{Name: "loopvec", Run: (*optimizer).loopVectorize},
		{Name: "strbuiltin", Run: (*optimizer).strBuiltinOpt},
		{Name: "latefold", Run: (*optimizer).lateFold},
		{Name: "dce2", Run: (*optimizer).dce},
	})
}

// lateFold iterates constant/copy propagation and folding to a bounded
// fixpoint, collapsing chains the single early passes cannot reach.
func (o *optimizer) lateFold(f *ir.Func) {
	for i := 0; i < 4; i++ {
		before := f.InstrCount() + o.feats["opt.folded"] + o.feats["opt.simplified"]
		o.copyProp(f)
		o.constFold(f)
		o.algebraicSimplify(f)
		if f.InstrCount()+o.feats["opt.folded"]+o.feats["opt.simplified"] == before {
			return
		}
	}
}

// Optimize runs the pass pipeline over every function.
func Optimize(prog *ir.Program, passes []Pass, trace *cover.Tracer, feats Features) {
	o := &optimizer{trace: trace, feats: feats, prog: prog}
	o.initScratch()
	o.run(passes)
}

// run executes the pipeline using the optimizer's recycled scratch.
func (o *optimizer) run(passes []Pass) {
	for _, f := range o.prog.Funcs {
		for i := range passes {
			p := &passes[i]
			o.trace.Hit(p.siteHash())
			p.Run(o, f)
		}
	}
}

// ---------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------

func foldBinary(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpShl:
		if b < 0 || b > 63 {
			return 0, false
		}
		return a << uint(b), true
	case ir.OpShr:
		if b < 0 || b > 63 {
			return 0, false
		}
		return a >> uint(b), true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpCmpEQ:
		return b2i(a == b), true
	case ir.OpCmpNE:
		return b2i(a != b), true
	case ir.OpCmpLT:
		return b2i(a < b), true
	case ir.OpCmpLE:
		return b2i(a <= b), true
	case ir.OpCmpGT:
		return b2i(a > b), true
	case ir.OpCmpGE:
		return b2i(a >= b), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (o *optimizer) constFold(f *ir.Func) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Float {
				continue
			}
			switch {
			case in.A.Kind == ir.VConst && in.B.Kind == ir.VConst &&
				in.Op >= ir.OpAdd && in.Op <= ir.OpCmpGE:
				if v, ok := foldBinary(in.Op, in.A.ID, in.B.ID); ok {
					o.trace.HitN("fold.bin", int(in.Op))
					o.feats.Add("opt.folded")
					*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, A: ir.Const(v)}
				}
			case in.Op == ir.OpNeg && in.A.Kind == ir.VConst:
				*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, A: ir.Const(-in.A.ID)}
				o.trace.HitStr("fold.neg")
			case in.Op == ir.OpNot && in.A.Kind == ir.VConst:
				*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, A: ir.Const(^in.A.ID)}
				o.trace.HitStr("fold.not")
			case in.Op == ir.OpLNot && in.A.Kind == ir.VConst:
				*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, A: ir.Const(b2i(in.A.ID == 0))}
				o.trace.HitStr("fold.lnot")
			}
		}
		// Fold conditional branches on constants into unconditional ones.
		if t := b.Terminator(); t != nil && t.Op == ir.OpCondBr &&
			t.A.Kind == ir.VConst && len(b.Succs) == 2 {
			target := b.Succs[0]
			if t.A.ID == 0 {
				target = b.Succs[1]
			}
			*t = ir.Instr{Op: ir.OpBr}
			b.Succs = append(b.Succs[:0], target)
			o.trace.HitStr("fold.condbr")
			o.feats.Add("opt.deadbranch")
		}
	}
}

// ---------------------------------------------------------------------
// Copy / constant propagation (block-local)
// ---------------------------------------------------------------------

func (o *optimizer) copyProp(f *ir.Func) {
	val := o.val
	for _, b := range f.Blocks {
		clear(val)
		sub := func(v ir.Value) ir.Value {
			if v.Kind == ir.VTemp {
				if r, ok := val[v.ID]; ok {
					return r
				}
			}
			return v
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			in.A = sub(in.A)
			in.B = sub(in.B)
			in.C = sub(in.C)
			for j := range in.Args {
				in.Args[j] = sub(in.Args[j])
			}
			switch in.Op {
			case ir.OpConst:
				val[in.Dst.ID] = in.A
				o.trace.HitStr("prop.const")
			case ir.OpCopy:
				val[in.Dst.ID] = in.A
				o.trace.HitStr("prop.copy")
			case ir.OpCall:
				// Calls may clobber memory; keep register knowledge.
			}
		}
	}
}

// ---------------------------------------------------------------------
// Algebraic simplification
// ---------------------------------------------------------------------

func (o *optimizer) algebraicSimplify(f *ir.Func) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Float {
				continue
			}
			simp := func(repl ir.Value, rule string) {
				o.trace.HitStr("simplify." + rule)
				o.feats.Add("opt.simplified")
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: repl}
			}
			switch in.Op {
			case ir.OpAdd:
				if in.B.Kind == ir.VConst && in.B.ID == 0 {
					simp(in.A, "add0")
				} else if in.A.Kind == ir.VConst && in.A.ID == 0 {
					simp(in.B, "0add")
				}
			case ir.OpSub:
				if in.B.Kind == ir.VConst && in.B.ID == 0 {
					simp(in.A, "sub0")
				} else if in.A == in.B && selfComparable(in.A) {
					simp(ir.Const(0), "subself")
				}
			case ir.OpMul:
				if in.B.Kind == ir.VConst {
					switch in.B.ID {
					case 1:
						simp(in.A, "mul1")
					case 0:
						simp(ir.Const(0), "mul0")
					case 2, 4, 8, 16, 32, 64:
						// Strength-reduce to shift.
						sh := int64(0)
						for v := in.B.ID; v > 1; v >>= 1 {
							sh++
						}
						o.trace.HitStr("simplify.mulshift")
						o.feats.Add("opt.strengthreduced")
						*in = ir.Instr{Op: ir.OpShl, Dst: in.Dst, A: in.A,
							B: ir.Const(sh)}
					}
				}
			case ir.OpXor:
				if in.A == in.B && selfComparable(in.A) {
					simp(ir.Const(0), "xorself")
				}
			case ir.OpAnd:
				if in.A == in.B && selfComparable(in.A) {
					simp(in.A, "andself")
				}
			case ir.OpOr:
				if in.A == in.B && selfComparable(in.A) {
					simp(in.A, "orself")
				}
			case ir.OpShl, ir.OpShr:
				if in.B.Kind == ir.VConst && in.B.ID == 0 {
					simp(in.A, "shift0")
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Common subexpression elimination (block-local)
// ---------------------------------------------------------------------

func (o *optimizer) cse(f *ir.Func) {
	seen := o.cse2
	for _, b := range f.Blocks {
		clear(seen)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpShl,
				ir.OpShr, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNeg, ir.OpNot,
				ir.OpLNot, ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE,
				ir.OpCmpGT, ir.OpCmpGE:
				a, bb := in.A, in.B
				if in.Op.IsCommutative() && valueLess(bb, a) {
					a, bb = bb, a
				}
				key := cseKey{op: in.Op, a: a, b: bb, float: in.Float}
				if prev, ok := seen[key]; ok {
					o.trace.HitStr("cse.hit")
					o.feats.Add("opt.cse")
					*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: prev}
				} else {
					seen[key] = in.Dst
				}
			case ir.OpStore, ir.OpCall:
				// Conservatively invalidate nothing: temps are SSA-ish
				// (each Dst assigned once per block by construction), and
				// pure arithmetic does not read memory.
			}
		}
	}
}

// selfComparable reports whether v==v implies value equality (registers
// and parameters; not loads, which alias memory).
func selfComparable(v ir.Value) bool {
	return v.Kind == ir.VTemp || v.Kind == ir.VParam
}

func valueLess(a, b ir.Value) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.ID < b.ID
}

// ---------------------------------------------------------------------
// Dead code elimination
// ---------------------------------------------------------------------

// markTempUsed flags v's temp ID in the liveness table.
func markTempUsed(used []bool, v ir.Value) {
	if v.Kind == ir.VTemp && v.ID >= 0 && v.ID < int64(len(used)) {
		used[v.ID] = true
	}
}

// boolScratch returns buf resized to n entries, all false, reusing
// capacity.
func boolScratch(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

func (o *optimizer) dce(f *ir.Func) {
	// Reachability.
	reach := boolScratch(o.reach, len(f.Blocks))
	o.reach = reach
	stack := o.stack[:0]
	if len(f.Blocks) > 0 {
		reach[0] = true
		stack = append(stack, 0)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[id].Succs {
			if s < len(reach) && !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	o.stack = stack
	for i, b := range f.Blocks {
		b.Reachable = reach[i]
		if !reach[i] && len(b.Instrs) > 0 {
			o.trace.HitN("dce.block", i%11)
			// Only real dead code counts as a defect-relevant feature;
			// empty sealed continuations (a lone terminator) do not.
			if len(b.Instrs) > 1 {
				o.feats.Add("opt.deadblock")
			}
			b.Instrs = b.Instrs[:0]
			b.Succs = b.Succs[:0]
		}
	}
	// Dead temp elimination: drop pure instructions whose Dst is unused.
	used := boolScratch(o.used, f.NextTemp)
	o.used = used
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			markTempUsed(used, in.A)
			markTempUsed(used, in.B)
			markTempUsed(used, in.C)
			for _, a := range in.Args {
				markTempUsed(used, a)
			}
		}
	}
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			pure := in.Op.HasDst() && in.Op != ir.OpCall && in.Op != ir.OpLoad
			if pure && in.Dst.Kind == ir.VTemp &&
				in.Dst.ID >= 0 && in.Dst.ID < int64(len(used)) && !used[in.Dst.ID] {
				o.trace.HitStr("dce.instr")
				o.feats.Add("opt.deadinstr")
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
}

// ---------------------------------------------------------------------
// Loop analysis + simulated vectorizer
// ---------------------------------------------------------------------

// loopInfo describes one natural loop (header + back-edge source).
type loopInfo struct {
	header int
	latch  int
}

// dfsFrame is one explicit DFS stack frame for findLoops.
type dfsFrame struct {
	id int // block being visited
	si int // next successor index to explore
}

// findLoops locates back edges via DFS (an edge to a block currently on
// the DFS stack closes a loop). The traversal is iterative with an
// explicit frame stack — same visit order as the recursive form, no
// per-call closure allocation — and reuses the optimizer's scratch.
func (o *optimizer) findLoops(f *ir.Func) []loopInfo {
	loops := o.loops[:0]
	state := o.stack[:0] // 0 unvisited, 1 on stack, 2 done
	for range f.Blocks {
		state = append(state, 0)
	}
	o.stack = state
	frames := o.frames[:0]
	if len(f.Blocks) > 0 {
		state[0] = 1
		frames = append(frames, dfsFrame{id: 0})
	}
	for len(frames) > 0 {
		fr := &frames[len(frames)-1]
		succs := f.Blocks[fr.id].Succs
		if fr.si < len(succs) {
			s := succs[fr.si]
			fr.si++
			if s >= len(f.Blocks) {
				continue
			}
			switch state[s] {
			case 0:
				state[s] = 1
				frames = append(frames, dfsFrame{id: s})
			case 1:
				loops = append(loops, loopInfo{header: s, latch: fr.id})
			}
		} else {
			state[fr.id] = 2
			frames = frames[:len(frames)-1]
		}
	}
	o.frames = frames
	o.loops = loops
	return loops
}

// loopVectorize recognizes counted array loops and rewrites their body
// arithmetic into vector ops. It deliberately reproduces the *shape* of
// GCC bug #111820: a loop whose induction variable starts at zero and
// decrements indefinitely makes the trip-count calculation diverge.
func (o *optimizer) loopVectorize(f *ir.Func) {
	loops := o.findLoops(f)
	o.trace.HitN("loops", len(loops)%7)
	if len(loops) == 0 {
		return
	}
	o.feats.AddN("opt.loops", len(loops))
	for _, l := range loops {
		header := f.Blocks[l.header]
		t := header.Terminator()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		// Classify the branch condition: an explicit compare, or the
		// value of a decrement itself ("while (--n)").
		var cmp *ir.Instr
		var condIsDecrement bool
		for i := range header.Instrs {
			in := &header.Instrs[i]
			if in.Dst != t.A {
				continue
			}
			if in.Op.IsCompare() {
				cmp = in
			}
			if in.Op == ir.OpSub && in.B.Kind == ir.VConst && in.B.ID == 1 {
				condIsDecrement = true
			}
		}
		if cmp != nil {
			o.trace.HitN("loop.cmp", int(cmp.Op))
		}
		latch := f.Blocks[l.latch]
		var stride *ir.Instr
		vectorizable := 0
		scan := [2]*ir.Block{latch, nil}
		nScan := 1
		if latch != header {
			scan[1] = header
			nScan = 2
		}
		for _, blk := range scan[:nScan] {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				switch in.Op {
				case ir.OpAdd, ir.OpSub:
					if in.B.Kind == ir.VConst && (in.B.ID == 1 || in.B.ID == -1) {
						stride = in
					}
				}
			}
		}
		for i := range latch.Instrs {
			switch latch.Instrs[i].Op {
			case ir.OpMul, ir.OpLoad, ir.OpStore:
				vectorizable++
			}
		}
		if stride == nil && !condIsDecrement {
			continue
		}
		if cmp != nil || condIsDecrement {
			o.feats.Add("opt.countedloop")
		}
		// The hang-shape: a decrementing induction tested against zero
		// (explicit CmpNE 0, or "while (--n)" whose truth test IS the
		// decremented value), starting from a zero initialization — the
		// trip count "starts at zero and decreases towards negative
		// infinity" (GCC PR #111820).
		decTestedNonzero := condIsDecrement ||
			(cmp != nil && cmp.Op == ir.OpCmpNE && cmp.B.Kind == ir.VConst &&
				cmp.B.ID == 0 && stride != nil && stride.Op == ir.OpSub)
		if decTestedNonzero && o.feats.Has("init.zerostore") && vectorizable >= 4 {
			o.feats.Add("opt.vec.badtrip")
		}
		if vectorizable >= 2 {
			o.feats.Add("opt.vectorized")
			o.trace.HitN("vec", vectorizable%9)
			// Rewrite eligible ops into vector forms.
			for i := range latch.Instrs {
				in := &latch.Instrs[i]
				if in.Op == ir.OpAdd && in.A.Kind == ir.VTemp && in.B.Kind == ir.VTemp {
					in.Op = ir.OpVecAdd
				}
				if in.Op == ir.OpMul && in.A.Kind == ir.VTemp && in.B.Kind == ir.VTemp {
					in.Op = ir.OpVecMul
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// String-builtin optimization (sprintf -> strlen), GCC's strlen pass
// ---------------------------------------------------------------------

// strBuiltinOpt rewrites `sprintf(buf, "%s", src)` whose result is used
// into `strlen(src)`-producing IR, mirroring GCC's sprintf return-value
// optimization. When src is a non-NUL-terminated constant buffer — the
// paper's verify_range crash — it records the bug-trigger feature.
func (o *optimizer) strBuiltinOpt(f *ir.Func) {
	for _, b := range f.Blocks {
		// Fast path: most blocks contain no sprintf call; skip the
		// rebuild entirely (the rebuilt slice would be identical).
		hasSprintf := false
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpCall && in.Callee == "sprintf" && len(in.Args) == 3 {
				hasSprintf = true
				break
			}
		}
		if !hasSprintf {
			continue
		}
		out := make([]ir.Instr, 0, len(b.Instrs)+2)
		for i := range b.Instrs {
			in := b.Instrs[i]
			if in.Op != ir.OpCall || in.Callee != "sprintf" || len(in.Args) != 3 {
				out = append(out, in)
				continue
			}
			o.trace.HitStr("strbuiltin.sprintf")
			o.feats.Add("opt.sprintf")
			// The fold only applies to the exact `sprintf(dst, "%s", src)`
			// shape: the format must be the 3-byte "%s" literal.
			fmtIdx := o.resolveGlobal(f, b, i, in.Args[1])
			if fmtIdx < 0 || !o.prog.Globals[fmtIdx].NulTerminated ||
				o.prog.Globals[fmtIdx].Size != 3 {
				out = append(out, in)
				continue
			}
			src := in.Args[2]
			gidx := o.resolveGlobal(f, b, i, src)
			if gidx >= 0 {
				g := o.prog.Globals[gidx]
				dst := o.resolveGlobal(f, b, i, in.Args[0])
				if !g.NulTerminated && (g.Const || dst == gidx) {
					// Invalid memory range handed to the range verifier.
					o.feats.Add("opt.strlen.unterminated")
				}
			}
			// Keep the call for its buffer-write side effect; only the
			// RETURN VALUE becomes strlen(src). Dropping the call would be
			// a miscompilation (caught by the differential tests).
			call := in
			call.Dst = f.NewTemp()
			out = append(out, call)
			out = append(out, ir.Instr{Op: ir.OpStrLen, Dst: in.Dst, A: src})
			o.feats.Add("opt.strlenfold")
		}
		b.Instrs = out
	}
}

// resolveGlobal walks back within the block to find the global whose
// address flows into v; -1 when unknown.
func (o *optimizer) resolveGlobal(f *ir.Func, b *ir.Block, before int, v ir.Value) int {
	if v.Kind == ir.VGlobal {
		return int(v.ID)
	}
	if v.Kind != ir.VTemp {
		return -1
	}
	for i := before - 1; i >= 0; i-- {
		in := b.Instrs[i]
		if in.Op == ir.OpAddr && in.Dst == v && in.A.Kind == ir.VGlobal {
			return int(in.A.ID)
		}
	}
	return -1
}
