package compilersim

import (
	"fmt"

	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/compilersim/ir"
)

// Pass is one optimizer pass over a function.
type Pass struct {
	Name string
	Run  func(o *optimizer, f *ir.Func)
}

// optimizer carries shared pass state.
type optimizer struct {
	trace *cover.Tracer
	feats Features
	prog  *ir.Program
}

// StandardPasses is the -O2 pipeline shared by both profiles (the
// profiles order them differently; see profiles.go).
func StandardPasses() []Pass {
	return []Pass{
		{"constfold", (*optimizer).constFold},
		{"copyprop", (*optimizer).copyProp},
		{"simplify", (*optimizer).algebraicSimplify},
		{"cse", (*optimizer).cse},
		{"dce", (*optimizer).dce},
		{"loopvec", (*optimizer).loopVectorize},
		{"strbuiltin", (*optimizer).strBuiltinOpt},
		{"latefold", (*optimizer).lateFold},
		{"dce2", (*optimizer).dce},
	}
}

// lateFold iterates constant/copy propagation and folding to a bounded
// fixpoint, collapsing chains the single early passes cannot reach.
func (o *optimizer) lateFold(f *ir.Func) {
	for i := 0; i < 4; i++ {
		before := f.InstrCount() + o.feats["opt.folded"] + o.feats["opt.simplified"]
		o.copyProp(f)
		o.constFold(f)
		o.algebraicSimplify(f)
		if f.InstrCount()+o.feats["opt.folded"]+o.feats["opt.simplified"] == before {
			return
		}
	}
}

// Optimize runs the pass pipeline over every function.
func Optimize(prog *ir.Program, passes []Pass, trace *cover.Tracer, feats Features) {
	o := &optimizer{trace: trace, feats: feats, prog: prog}
	for _, f := range prog.Funcs {
		for _, p := range passes {
			o.trace.HitStr("pass." + p.Name)
			p.Run(o, f)
		}
	}
}

// ---------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------

func foldBinary(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpShl:
		if b < 0 || b > 63 {
			return 0, false
		}
		return a << uint(b), true
	case ir.OpShr:
		if b < 0 || b > 63 {
			return 0, false
		}
		return a >> uint(b), true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpCmpEQ:
		return b2i(a == b), true
	case ir.OpCmpNE:
		return b2i(a != b), true
	case ir.OpCmpLT:
		return b2i(a < b), true
	case ir.OpCmpLE:
		return b2i(a <= b), true
	case ir.OpCmpGT:
		return b2i(a > b), true
	case ir.OpCmpGE:
		return b2i(a >= b), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (o *optimizer) constFold(f *ir.Func) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Float {
				continue
			}
			switch {
			case in.A.Kind == ir.VConst && in.B.Kind == ir.VConst &&
				in.Op >= ir.OpAdd && in.Op <= ir.OpCmpGE:
				if v, ok := foldBinary(in.Op, in.A.ID, in.B.ID); ok {
					o.trace.HitN("fold.bin", int(in.Op))
					o.feats.Add("opt.folded")
					*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, A: ir.Const(v)}
				}
			case in.Op == ir.OpNeg && in.A.Kind == ir.VConst:
				*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, A: ir.Const(-in.A.ID)}
				o.trace.HitStr("fold.neg")
			case in.Op == ir.OpNot && in.A.Kind == ir.VConst:
				*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, A: ir.Const(^in.A.ID)}
				o.trace.HitStr("fold.not")
			case in.Op == ir.OpLNot && in.A.Kind == ir.VConst:
				*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, A: ir.Const(b2i(in.A.ID == 0))}
				o.trace.HitStr("fold.lnot")
			}
		}
		// Fold conditional branches on constants into unconditional ones.
		if t := b.Terminator(); t != nil && t.Op == ir.OpCondBr &&
			t.A.Kind == ir.VConst && len(b.Succs) == 2 {
			target := b.Succs[0]
			if t.A.ID == 0 {
				target = b.Succs[1]
			}
			*t = ir.Instr{Op: ir.OpBr}
			b.Succs = []int{target}
			o.trace.HitStr("fold.condbr")
			o.feats.Add("opt.deadbranch")
		}
	}
}

// ---------------------------------------------------------------------
// Copy / constant propagation (block-local)
// ---------------------------------------------------------------------

func (o *optimizer) copyProp(f *ir.Func) {
	for _, b := range f.Blocks {
		val := map[int64]ir.Value{} // temp id -> known value
		sub := func(v ir.Value) ir.Value {
			if v.Kind == ir.VTemp {
				if r, ok := val[v.ID]; ok {
					return r
				}
			}
			return v
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			in.A = sub(in.A)
			in.B = sub(in.B)
			in.C = sub(in.C)
			for j := range in.Args {
				in.Args[j] = sub(in.Args[j])
			}
			switch in.Op {
			case ir.OpConst:
				val[in.Dst.ID] = in.A
				o.trace.HitStr("prop.const")
			case ir.OpCopy:
				val[in.Dst.ID] = in.A
				o.trace.HitStr("prop.copy")
			case ir.OpCall:
				// Calls may clobber memory; keep register knowledge.
			}
		}
	}
}

// ---------------------------------------------------------------------
// Algebraic simplification
// ---------------------------------------------------------------------

func (o *optimizer) algebraicSimplify(f *ir.Func) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Float {
				continue
			}
			simp := func(repl ir.Value, rule string) {
				o.trace.HitStr("simplify." + rule)
				o.feats.Add("opt.simplified")
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: repl}
			}
			switch in.Op {
			case ir.OpAdd:
				if in.B.Kind == ir.VConst && in.B.ID == 0 {
					simp(in.A, "add0")
				} else if in.A.Kind == ir.VConst && in.A.ID == 0 {
					simp(in.B, "0add")
				}
			case ir.OpSub:
				if in.B.Kind == ir.VConst && in.B.ID == 0 {
					simp(in.A, "sub0")
				} else if in.A == in.B && selfComparable(in.A) {
					simp(ir.Const(0), "subself")
				}
			case ir.OpMul:
				if in.B.Kind == ir.VConst {
					switch in.B.ID {
					case 1:
						simp(in.A, "mul1")
					case 0:
						simp(ir.Const(0), "mul0")
					case 2, 4, 8, 16, 32, 64:
						// Strength-reduce to shift.
						sh := int64(0)
						for v := in.B.ID; v > 1; v >>= 1 {
							sh++
						}
						o.trace.HitStr("simplify.mulshift")
						o.feats.Add("opt.strengthreduced")
						*in = ir.Instr{Op: ir.OpShl, Dst: in.Dst, A: in.A,
							B: ir.Const(sh)}
					}
				}
			case ir.OpXor:
				if in.A == in.B && selfComparable(in.A) {
					simp(ir.Const(0), "xorself")
				}
			case ir.OpAnd:
				if in.A == in.B && selfComparable(in.A) {
					simp(in.A, "andself")
				}
			case ir.OpOr:
				if in.A == in.B && selfComparable(in.A) {
					simp(in.A, "orself")
				}
			case ir.OpShl, ir.OpShr:
				if in.B.Kind == ir.VConst && in.B.ID == 0 {
					simp(in.A, "shift0")
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Common subexpression elimination (block-local)
// ---------------------------------------------------------------------

func (o *optimizer) cse(f *ir.Func) {
	for _, b := range f.Blocks {
		seen := map[string]ir.Value{}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpShl,
				ir.OpShr, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNeg, ir.OpNot,
				ir.OpLNot, ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE,
				ir.OpCmpGT, ir.OpCmpGE:
				a, bb := in.A, in.B
				if in.Op.IsCommutative() && valueLess(bb, a) {
					a, bb = bb, a
				}
				key := fmt.Sprintf("%d|%v|%v|%v", in.Op, a, bb, in.Float)
				if prev, ok := seen[key]; ok {
					o.trace.HitStr("cse.hit")
					o.feats.Add("opt.cse")
					*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: prev}
				} else {
					seen[key] = in.Dst
				}
			case ir.OpStore, ir.OpCall:
				// Conservatively invalidate nothing: temps are SSA-ish
				// (each Dst assigned once per block by construction), and
				// pure arithmetic does not read memory.
			}
		}
	}
}

// selfComparable reports whether v==v implies value equality (registers
// and parameters; not loads, which alias memory).
func selfComparable(v ir.Value) bool {
	return v.Kind == ir.VTemp || v.Kind == ir.VParam
}

func valueLess(a, b ir.Value) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.ID < b.ID
}

// ---------------------------------------------------------------------
// Dead code elimination
// ---------------------------------------------------------------------

func (o *optimizer) dce(f *ir.Func) {
	// Reachability.
	reach := make([]bool, len(f.Blocks))
	var stack []int
	if len(f.Blocks) > 0 {
		reach[0] = true
		stack = append(stack, 0)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[id].Succs {
			if s < len(reach) && !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	for i, b := range f.Blocks {
		b.Reachable = reach[i]
		if !reach[i] && len(b.Instrs) > 0 {
			o.trace.HitN("dce.block", i%11)
			// Only real dead code counts as a defect-relevant feature;
			// empty sealed continuations (a lone terminator) do not.
			if len(b.Instrs) > 1 {
				o.feats.Add("opt.deadblock")
			}
			b.Instrs = nil
			b.Succs = nil
		}
	}
	// Dead temp elimination: drop pure instructions whose Dst is unused.
	used := map[int64]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, v := range []ir.Value{in.A, in.B, in.C} {
				if v.Kind == ir.VTemp {
					used[v.ID] = true
				}
			}
			for _, a := range in.Args {
				if a.Kind == ir.VTemp {
					used[a.ID] = true
				}
			}
		}
	}
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			pure := in.Op.HasDst() && in.Op != ir.OpCall && in.Op != ir.OpLoad
			if pure && in.Dst.Kind == ir.VTemp && !used[in.Dst.ID] {
				o.trace.HitStr("dce.instr")
				o.feats.Add("opt.deadinstr")
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
}

// ---------------------------------------------------------------------
// Loop analysis + simulated vectorizer
// ---------------------------------------------------------------------

// loopInfo describes one natural loop (header + back-edge source).
type loopInfo struct {
	header int
	latch  int
	blocks map[int]bool
}

// findLoops locates back edges via DFS (an edge to a block currently on
// the DFS stack closes a loop).
func findLoops(f *ir.Func) []loopInfo {
	var loops []loopInfo
	state := make([]int, len(f.Blocks)) // 0 unvisited, 1 on stack, 2 done
	var dfs func(id int)
	dfs = func(id int) {
		state[id] = 1
		for _, s := range f.Blocks[id].Succs {
			if s >= len(f.Blocks) {
				continue
			}
			switch state[s] {
			case 0:
				dfs(s)
			case 1:
				loops = append(loops, loopInfo{header: s, latch: id,
					blocks: map[int]bool{s: true, id: true}})
			}
		}
		state[id] = 2
	}
	if len(f.Blocks) > 0 {
		dfs(0)
	}
	return loops
}

// loopVectorize recognizes counted array loops and rewrites their body
// arithmetic into vector ops. It deliberately reproduces the *shape* of
// GCC bug #111820: a loop whose induction variable starts at zero and
// decrements indefinitely makes the trip-count calculation diverge.
func (o *optimizer) loopVectorize(f *ir.Func) {
	loops := findLoops(f)
	o.trace.HitN("loops", len(loops)%7)
	if len(loops) == 0 {
		return
	}
	o.feats.AddN("opt.loops", len(loops))
	for _, l := range loops {
		header := f.Blocks[l.header]
		t := header.Terminator()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		// Classify the branch condition: an explicit compare, or the
		// value of a decrement itself ("while (--n)").
		var cmp *ir.Instr
		var condIsDecrement bool
		for i := range header.Instrs {
			in := &header.Instrs[i]
			if in.Dst != t.A {
				continue
			}
			if in.Op.IsCompare() {
				cmp = in
			}
			if in.Op == ir.OpSub && in.B.Kind == ir.VConst && in.B.ID == 1 {
				condIsDecrement = true
			}
		}
		if cmp != nil {
			o.trace.HitN("loop.cmp", int(cmp.Op))
		}
		latch := f.Blocks[l.latch]
		var stride *ir.Instr
		vectorizable := 0
		scan := []*ir.Block{latch}
		if latch != header {
			scan = append(scan, header)
		}
		for _, blk := range scan {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				switch in.Op {
				case ir.OpAdd, ir.OpSub:
					if in.B.Kind == ir.VConst && (in.B.ID == 1 || in.B.ID == -1) {
						stride = in
					}
				}
			}
		}
		for i := range latch.Instrs {
			switch latch.Instrs[i].Op {
			case ir.OpMul, ir.OpLoad, ir.OpStore:
				vectorizable++
			}
		}
		if stride == nil && !condIsDecrement {
			continue
		}
		if cmp != nil || condIsDecrement {
			o.feats.Add("opt.countedloop")
		}
		// The hang-shape: a decrementing induction tested against zero
		// (explicit CmpNE 0, or "while (--n)" whose truth test IS the
		// decremented value), starting from a zero initialization — the
		// trip count "starts at zero and decreases towards negative
		// infinity" (GCC PR #111820).
		decTestedNonzero := condIsDecrement ||
			(cmp != nil && cmp.Op == ir.OpCmpNE && cmp.B.Kind == ir.VConst &&
				cmp.B.ID == 0 && stride != nil && stride.Op == ir.OpSub)
		if decTestedNonzero && o.feats.Has("init.zerostore") && vectorizable >= 4 {
			o.feats.Add("opt.vec.badtrip")
		}
		if vectorizable >= 2 {
			o.feats.Add("opt.vectorized")
			o.trace.HitN("vec", vectorizable%9)
			// Rewrite eligible ops into vector forms.
			for i := range latch.Instrs {
				in := &latch.Instrs[i]
				if in.Op == ir.OpAdd && in.A.Kind == ir.VTemp && in.B.Kind == ir.VTemp {
					in.Op = ir.OpVecAdd
				}
				if in.Op == ir.OpMul && in.A.Kind == ir.VTemp && in.B.Kind == ir.VTemp {
					in.Op = ir.OpVecMul
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// String-builtin optimization (sprintf -> strlen), GCC's strlen pass
// ---------------------------------------------------------------------

// strBuiltinOpt rewrites `sprintf(buf, "%s", src)` whose result is used
// into `strlen(src)`-producing IR, mirroring GCC's sprintf return-value
// optimization. When src is a non-NUL-terminated constant buffer — the
// paper's verify_range crash — it records the bug-trigger feature.
func (o *optimizer) strBuiltinOpt(f *ir.Func) {
	for _, b := range f.Blocks {
		var out []ir.Instr
		for i := range b.Instrs {
			in := b.Instrs[i]
			if in.Op != ir.OpCall || in.Callee != "sprintf" || len(in.Args) != 3 {
				out = append(out, in)
				continue
			}
			o.trace.HitStr("strbuiltin.sprintf")
			o.feats.Add("opt.sprintf")
			// The fold only applies to the exact `sprintf(dst, "%s", src)`
			// shape: the format must be the 3-byte "%s" literal.
			fmtIdx := o.resolveGlobal(f, b, i, in.Args[1])
			if fmtIdx < 0 || !o.prog.Globals[fmtIdx].NulTerminated ||
				o.prog.Globals[fmtIdx].Size != 3 {
				out = append(out, in)
				continue
			}
			src := in.Args[2]
			gidx := o.resolveGlobal(f, b, i, src)
			if gidx >= 0 {
				g := o.prog.Globals[gidx]
				dst := o.resolveGlobal(f, b, i, in.Args[0])
				if !g.NulTerminated && (g.Const || dst == gidx) {
					// Invalid memory range handed to the range verifier.
					o.feats.Add("opt.strlen.unterminated")
				}
			}
			// Keep the call for its buffer-write side effect; only the
			// RETURN VALUE becomes strlen(src). Dropping the call would be
			// a miscompilation (caught by the differential tests).
			call := in
			call.Dst = f.NewTemp()
			out = append(out, call)
			out = append(out, ir.Instr{Op: ir.OpStrLen, Dst: in.Dst, A: src})
			o.feats.Add("opt.strlenfold")
		}
		b.Instrs = out
	}
}

// resolveGlobal walks back within the block to find the global whose
// address flows into v; -1 when unknown.
func (o *optimizer) resolveGlobal(f *ir.Func, b *ir.Block, before int, v ir.Value) int {
	if v.Kind == ir.VGlobal {
		return int(v.ID)
	}
	if v.Kind != ir.VTemp {
		return -1
	}
	for i := before - 1; i >= 0; i-- {
		in := b.Instrs[i]
		if in.Op == ir.OpAddr && in.Dst == v && in.A.Kind == ir.VGlobal {
			return int(in.A.ID)
		}
	}
	return -1
}
