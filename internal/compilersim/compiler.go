package compilersim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/compilersim/ir"
	"github.com/icsnju/metamut-go/internal/obs"
)

// Options selects the compilation configuration, mirroring the compiler
// command line the macro fuzzer samples.
type Options struct {
	// OptLevel is 0..3 (-O0 .. -O3). The paper's RQ1 runs use -O2.
	OptLevel int
	// DisabledPasses names optimizer passes switched off, e.g.
	// "loopvec" for -fno-tree-vectorize or "strbuiltin" for
	// -fno-optimize-strlen.
	DisabledPasses []string
}

// DefaultOptions is -O2 with the full pipeline.
func DefaultOptions() Options { return Options{OptLevel: 2} }

// FlagString renders the options like a compiler invocation.
func (o Options) FlagString() string {
	s := fmt.Sprintf("-O%d", o.OptLevel)
	for _, p := range o.DisabledPasses {
		s += " -fno-" + p
	}
	return s
}

// Result is the outcome of one compilation.
type Result struct {
	// OK means the input compiled (no diagnostics, no crash).
	OK bool
	// Diagnostics carries front-end errors for rejected programs.
	Diagnostics []string
	// Crash is non-nil when an injected defect fired.
	Crash *CrashReport
	// Hang mirrors a compiler that never terminates; the driver detects
	// it instead of actually hanging.
	Hang bool
	// Coverage is the edge map for this single compilation.
	Coverage *cover.Map
	// Object is the generated code (nil unless fully compiled).
	Object *Object
	// Feats is exposed for tests and ablations.
	Feats Features
}

// Compiler is one simulated compiler instance (a profile plus version).
type Compiler struct {
	Name    string // "gcc" or "clang"
	Version int    // e.g. 14 or 18
	bugs    []Bug
	passes  []Pass
	tele    *compilerTelemetry
	cache   *mutantCache

	// Per-stage tracer seeds (HashString(Name+".fe") etc.), hashed once
	// so per-compilation tracer setup allocates nothing.
	feSeed, irSeed, optSeed, beSeed uint32

	// ctxs pools compile contexts for the owning Compile API; streams
	// that want borrowed results hold their own Context instead.
	ctxs sync.Pool
}

// compilerTelemetry holds pre-resolved handles so the per-compilation
// hot path never does a family lookup.
type compilerTelemetry struct {
	ok, reject, crash, hang *obs.Counter
	byComponent             *obs.CounterVec
	cacheHits               *obs.Counter
}

// New returns a compiler for the given profile name ("gcc"/"clang").
func New(name string, version int) *Compiler {
	c := &Compiler{Name: name, Version: version}
	switch name {
	case "gcc":
		c.bugs = gccBugs()
		c.passes = StandardPasses()
	case "clang":
		c.bugs = clangBugs()
		// Clang profile: a differently-ordered pipeline (simplify before
		// copyprop, extra CSE round) so the two compilers cover
		// different edges on the same input.
		c.passes = initPassSites([]Pass{
			{Name: "simplify", Run: (*optimizer).algebraicSimplify},
			{Name: "constfold", Run: (*optimizer).constFold},
			{Name: "copyprop", Run: (*optimizer).copyProp},
			{Name: "cse", Run: (*optimizer).cse},
			{Name: "dce", Run: (*optimizer).dce},
			{Name: "loopvec", Run: (*optimizer).loopVectorize},
			{Name: "strbuiltin", Run: (*optimizer).strBuiltinOpt},
			{Name: "cse2", Run: (*optimizer).cse},
			{Name: "latefold", Run: (*optimizer).lateFold},
			{Name: "dce2", Run: (*optimizer).dce},
		})
	default:
		panic("compilersim: unknown profile " + name)
	}
	c.feSeed = cover.HashString(c.Name + ".fe")
	c.irSeed = cover.HashString(c.Name + ".ir")
	c.optSeed = cover.HashString(c.Name + ".opt")
	c.beSeed = cover.HashString(c.Name + ".be")
	c.ctxs.New = func() any { return c.NewContext() }
	return c
}

// Bugs exposes the defect corpus (read-only) for the experiment harness.
func (c *Compiler) Bugs() []Bug { return c.bugs }

// BugStats returns per-component and per-kind defect counts.
func (c *Compiler) BugStats() map[string]int { return bugStats(c.bugs) }

// Instrument attaches live telemetry: every Compile updates
// compile_results_total{compiler,outcome} and, for crashes,
// compiler_crashes_total{compiler,component}.
func (c *Compiler) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	results := reg.Counter("compile_results_total", "compiler", "outcome")
	c.tele = &compilerTelemetry{
		ok:          results.With(c.Name, "ok"),
		reject:      results.With(c.Name, "reject"),
		crash:       results.With(c.Name, "crash"),
		hang:        results.With(c.Name, "hang"),
		byComponent: reg.Counter("compiler_crashes_total", "compiler", "component"),
		cacheHits:   reg.Counter("mutant_cache_hits_total").With(),
	}
}

// record updates the outcome counters for one (possibly cached)
// compilation; cache hits count like fresh ones so rates stay honest.
func (t *compilerTelemetry) record(c *Compiler, res Result) {
	switch {
	case res.OK:
		t.ok.Inc()
	case res.Hang:
		t.hang.Inc()
		t.byComponent.With(c.Name, res.Crash.Component.String()).Inc()
	case res.Crash != nil:
		t.crash.Inc()
		t.byComponent.With(c.Name, res.Crash.Component.String()).Inc()
	default:
		t.reject.Inc()
	}
}

// Compile runs the full pipeline on src, consulting the mutant cache
// first when one is enabled. The result is fully owned by the caller:
// compilation happens through a pooled context and the borrowed result
// is deep-cloned before the context returns to the pool. Fuzzing streams
// that can honor the borrow discipline should hold a Context and call
// Context.Compile instead.
func (c *Compiler) Compile(src string, opts Options) Result {
	var key [32]byte
	if c.cache != nil {
		key = mutantKey(src, opts)
		if res, ok := c.cache.get(key); ok {
			if t := c.tele; t != nil {
				t.cacheHits.Inc()
				t.record(c, res)
			}
			return res
		}
	}
	cx := c.ctxs.Get().(*Context)
	res := cloneResult(cx.compile(src, opts))
	c.ctxs.Put(cx)
	if c.cache != nil {
		c.cache.put(key, res)
	}
	if t := c.tele; t != nil {
		t.record(c, res)
	}
	return res
}

// enabledPasses filters the profile pipeline by the options.
func (c *Compiler) enabledPasses(opts Options) []Pass {
	disabled := map[string]bool{}
	for _, p := range opts.DisabledPasses {
		disabled[p] = true
	}
	var out []Pass
	for _, p := range c.passes {
		base := strings.TrimRight(p.Name, "0123456789")
		if disabled[p.Name] || disabled[base] {
			continue
		}
		out = append(out, p)
	}
	if opts.OptLevel == 1 {
		// -O1: no vectorizer, no string-builtin folding.
		var o1 []Pass
		for _, p := range out {
			if p.Name == "loopvec" || p.Name == "strbuiltin" {
				continue
			}
			o1 = append(o1, p)
		}
		return o1
	}
	return out
}

// diagClass reduces a diagnostic message to its template (everything up
// to the first quoted operand), so error-path coverage sites stay bounded
// while still distinguishing diagnostic kinds.
func diagClass(msg string) string {
	if i := strings.IndexByte(msg, '"'); i >= 0 {
		msg = msg[:i]
	}
	if len(msg) > 28 {
		msg = msg[:28]
	}
	return msg
}

// checkBugs evaluates the component's defects in a stable order and
// returns the first that fires; the optimizer/back-end gate on MinOpt.
func (c *Compiler) checkBugs(tc *TriggerCtx, comp Component) *CrashReport {
	for i := range c.bugs {
		b := &c.bugs[i]
		if b.Component != comp || tc.OptLevel < b.MinOpt {
			continue
		}
		if b.Trigger(tc) {
			return &CrashReport{
				BugID:     b.ID,
				Component: b.Component,
				Kind:      b.Kind,
				Frames:    b.Frames,
				Message:   b.Message,
			}
		}
	}
	return nil
}

func (c *Compiler) crashResult(crash *CrashReport, covMap *cover.Map,
	feats Features, diags []string) Result {
	r := Result{
		OK:          false,
		Diagnostics: diags,
		Crash:       crash,
		Coverage:    covMap,
		Feats:       feats,
	}
	if crash.Kind == Hang {
		r.Hang = true
	}
	return r
}

// FeatureNames returns the sorted feature keys (diagnostic helper).
func FeatureNames(f Features) []string {
	var keys []string
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var _ = ir.OpNop
