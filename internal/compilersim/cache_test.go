package compilersim

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/icsnju/metamut-go/internal/obs"
)

const cacheProg = `int main() { int x = 3; int y = x * 2; return y; }`

// TestMutantCachePurity pins the cache's core contract: a cached Result
// is indistinguishable from a fresh compile of the same input.
func TestMutantCachePurity(t *testing.T) {
	fresh := New("gcc", 14).Compile(cacheProg, DefaultOptions())

	c := New("gcc", 14)
	c.EnableMutantCache(8)
	first := c.Compile(cacheProg, DefaultOptions())
	second := c.Compile(cacheProg, DefaultOptions())

	if !reflect.DeepEqual(fresh, first) {
		t.Error("cache-miss compile differs from uncached compile")
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cache-hit result differs from the original compile")
	}
	if hits, misses := c.CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

// TestMutantCacheKeysOnFlags ensures distinct options do not collide:
// -O0 and -O2 results differ and each caches under its own key.
func TestMutantCacheKeysOnFlags(t *testing.T) {
	c := New("gcc", 14)
	c.EnableMutantCache(8)
	o0 := c.Compile(cacheProg, Options{OptLevel: 0})
	o2 := c.Compile(cacheProg, Options{OptLevel: 2})
	if reflect.DeepEqual(o0.Coverage, o2.Coverage) {
		t.Fatal("test premise broken: -O0 and -O2 produced identical coverage")
	}
	if got := c.Compile(cacheProg, Options{OptLevel: 0}); !reflect.DeepEqual(got, o0) {
		t.Error("-O0 hit returned a different result")
	}
	if hits, misses := c.CacheStats(); hits != 1 || misses != 2 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 2)", hits, misses)
	}
}

// TestMutantCacheEvictsLRU bounds the cache: capacity 2 with three
// distinct programs evicts the least recently used entry.
func TestMutantCacheEvictsLRU(t *testing.T) {
	c := New("gcc", 14)
	c.EnableMutantCache(2)
	prog := func(i int) string {
		return fmt.Sprintf("int main() { return %d; }", i)
	}
	c.Compile(prog(0), DefaultOptions()) // miss: {0}
	c.Compile(prog(1), DefaultOptions()) // miss: {0,1}
	c.Compile(prog(0), DefaultOptions()) // hit, 0 becomes MRU: {1,0}
	c.Compile(prog(2), DefaultOptions()) // miss, evicts 1: {0,2}
	c.Compile(prog(1), DefaultOptions()) // miss again (was evicted)
	c.Compile(prog(0), DefaultOptions()) // still resident? no — 0 evicted by 1
	hits, misses := c.CacheStats()
	if hits != 1 || misses != 5 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 5)", hits, misses)
	}
}

// TestMutantCacheTelemetry verifies cache hits still feed the outcome
// counters and increment mutant_cache_hits_total.
func TestMutantCacheTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	c := New("gcc", 14)
	c.Instrument(reg)
	c.EnableMutantCache(4)
	c.Compile(cacheProg, DefaultOptions())
	c.Compile(cacheProg, DefaultOptions())
	snap := reg.Snapshot()
	if got := snap.Counter("compile_results_total", "gcc", "ok"); got != 2 {
		t.Errorf("compile_results_total{gcc,ok} = %d, want 2 (hits count too)", got)
	}
	if got := snap.Counter("mutant_cache_hits_total"); got != 1 {
		t.Errorf("mutant_cache_hits_total = %d, want 1", got)
	}
}

// TestDisabledCacheIsInert re-enables then disables the cache and
// checks compile still works with zero stats.
func TestDisabledCacheIsInert(t *testing.T) {
	c := New("gcc", 14)
	c.EnableMutantCache(4)
	c.EnableMutantCache(0)
	c.Compile(cacheProg, DefaultOptions())
	c.Compile(cacheProg, DefaultOptions())
	if hits, misses := c.CacheStats(); hits != 0 || misses != 0 {
		t.Errorf("disabled cache reported (%d hits, %d misses)", hits, misses)
	}
}
