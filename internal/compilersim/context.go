package compilersim

import (
	"maps"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
)

// Context is a reusable per-stream compile context — the persistent-mode
// analogue for the simulated compiler. It owns every buffer one
// compilation needs (coverage map, tracers, AST arena, IR generator,
// optimizer scratch, back-end scratch), so the mutate→compile→cover hot
// loop stops re-allocating them per mutant.
//
// Ownership rules (see docs/PERFORMANCE.md):
//
//   - A Context is NOT safe for concurrent use. One context per stream,
//     the same discipline as the stream RNG.
//   - Results returned by Context.Compile are BORROWED: Coverage, Feats,
//     Diagnostics and Object alias context-owned storage and are valid
//     only until the next Compile on the same context. Callers that
//     retain anything (corpus admission, crash reports) must copy what
//     they keep — coverage is typically merged immediately, which is a
//     copy by construction.
//   - Compiler.Compile keeps its owning contract: it compiles through a
//     pooled context and deep-clones the result before returning it.
type Context struct {
	c *Compiler

	cov   cover.Map
	feTr  cover.Tracer
	irTr  cover.Tracer
	optTr cover.Tracer
	beTr  cover.Tracer

	feats Features
	tc    TriggerCtx
	diags []string

	lx    *cast.Lexer
	toks  []cast.Token
	arena *cast.Arena
	g     irgen
	o     optimizer
	be    codegen

	// Enabled-pass memo, keyed by the last Options seen.
	passLevel    int
	passDisabled []string
	passList     []Pass
	passValid    bool
}

// NewContext returns a fresh reusable compile context for c.
func (c *Compiler) NewContext() *Context {
	cx := &Context{
		c:     c,
		feats: Features{},
		lx:    cast.NewLexer(""),
		arena: cast.NewArena(),
	}
	cx.g.initMaps()
	cx.o.initScratch()
	return cx
}

// Compile runs the full pipeline on src through this context, consulting
// the compiler's mutant cache when one is enabled. The result is
// borrowed (valid until the next Compile on this context); cache entries
// are deep clones, so cached results stay immutable and shareable.
func (cx *Context) Compile(src string, opts Options) Result {
	c := cx.c
	var key [32]byte
	if c.cache != nil {
		key = mutantKey(src, opts)
		if res, ok := c.cache.get(key); ok {
			if t := c.tele; t != nil {
				t.cacheHits.Inc()
				t.record(c, res)
			}
			return res
		}
	}
	res := cx.compile(src, opts)
	if c.cache != nil {
		c.cache.put(key, cloneResult(res))
	}
	if t := c.tele; t != nil {
		t.record(c, res)
	}
	return res
}

// compile is the uninstrumented pipeline over reused context state.
func (cx *Context) compile(src string, opts Options) Result {
	c := cx.c
	cx.cov.Reset()
	clear(cx.feats)
	cx.diags = cx.diags[:0]
	diags := cx.diags
	covMap := &cx.cov
	feats := cx.feats
	cx.tc = TriggerCtx{Source: src, Feats: feats, OptLevel: opts.OptLevel}
	tc := &cx.tc

	// ---- Front-end: one lex serves both the lexical coverage walk and
	// the parser (runs even for garbage input — token-kind edges are the
	// coverage a byte-level fuzzer climbs with invalid inputs). Coverage
	// is capped at the first 200000 tokens, exactly like the standalone
	// token walk it replaces; lexing itself continues so the parser sees
	// the full stream.
	cx.feTr.ResetTo(covMap, c.feSeed)
	feTrace := &cx.feTr
	cx.lx.Reset(src)
	toks := cx.toks[:0]
	var lexErr error
	for i := 0; ; i++ {
		tok, err := cx.lx.Next()
		if err != nil {
			lexErr = err
			if i < 200000 {
				feTrace.HitN("lex.error", i%59)
			}
			break
		}
		toks = append(toks, tok)
		if tok.Kind == cast.TokEOF {
			if i < 200000 {
				feTrace.HitStr("lex.eof")
			}
			break
		}
		if i < 200000 {
			feTrace.HitNHash(lexSiteHash[tok.Kind], len(tok.Text)%7)
		}
	}
	cx.toks = toks

	var tu *cast.TranslationUnit
	var perr error
	if lexErr != nil {
		perr = lexErr
	} else {
		cx.arena.Reset()
		tu, perr = cast.ParseTokens(src, toks, cx.arena)
	}
	tc.ParseOK = perr == nil
	if perr != nil {
		diags = append(diags, perr.Error())
		// Error recovery is code too: distinct syntactic failure points
		// exercise distinct diagnostic paths — the coverage a byte-level
		// fuzzer climbs.
		if pe, ok := perr.(*cast.ParseError); ok {
			feTrace.HitN("parse.error", pe.Line%53)
			feTrace.HitStr("parse.msg." + diagClass(pe.Msg))
		} else {
			feTrace.HitStr("parse.error")
		}
	} else {
		// Parse-tree coverage: node-kind edges in source order.
		cast.Walk(tu, func(n cast.Node) bool {
			feTrace.Hit(astSiteHash[n.Kind()])
			return true
		})
		if cerr := cast.Check(tu); cerr != nil {
			tc.CheckOK = false
			if se, ok := cerr.(cast.SemaErrors); ok {
				for _, e := range se {
					diags = append(diags, e.Error())
					feTrace.HitN("sema."+diagClass(e.Msg), e.Offset%41)
				}
			} else {
				diags = append(diags, cerr.Error())
			}
		} else {
			tc.CheckOK = true
		}
	}
	cx.diags = diags

	// Front-end defects can fire on any input (error-recovery paths).
	if crash := c.checkBugs(tc, FrontEnd); crash != nil {
		return c.crashResult(crash, covMap, feats, diags)
	}
	if !tc.ParseOK || !tc.CheckOK {
		return Result{OK: false, Diagnostics: diags, Coverage: covMap, Feats: feats}
	}

	// ---- IR generation.
	cx.irTr.ResetTo(covMap, c.irSeed)
	cx.g.trace = &cx.irTr
	cx.g.feats = feats
	prog := cx.g.generate(tu)
	if crash := c.checkBugs(tc, IRGen); crash != nil {
		return c.crashResult(crash, covMap, feats, diags)
	}

	// ---- Optimizer.
	if opts.OptLevel >= 1 {
		cx.optTr.ResetTo(covMap, c.optSeed)
		cx.o.trace = &cx.optTr
		cx.o.feats = feats
		cx.o.prog = prog
		cx.o.run(cx.enabledPasses(opts))
		if crash := c.checkBugs(tc, Opt); crash != nil {
			return c.crashResult(crash, covMap, feats, diags)
		}
	}

	// ---- Back-end.
	cx.beTr.ResetTo(covMap, c.beSeed)
	obj := cx.be.generate(prog, &cx.beTr, feats)
	if crash := c.checkBugs(tc, BackEnd); crash != nil {
		return c.crashResult(crash, covMap, feats, diags)
	}

	return Result{OK: true, Coverage: covMap, Object: obj, Feats: feats}
}

// enabledPasses returns the profile pipeline filtered by opts, memoized
// against the last options seen (fuzzing streams compile thousands of
// mutants under one flag set).
func (cx *Context) enabledPasses(opts Options) []Pass {
	if cx.passValid && cx.passLevel == opts.OptLevel &&
		stringSliceEqual(cx.passDisabled, opts.DisabledPasses) {
		return cx.passList
	}
	cx.passList = cx.c.enabledPasses(opts)
	cx.passLevel = opts.OptLevel
	cx.passDisabled = append(cx.passDisabled[:0], opts.DisabledPasses...)
	cx.passValid = true
	return cx.passList
}

func stringSliceEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cloneResult deep-copies a borrowed Result into owned storage: a fresh
// coverage map, feature map, diagnostics and object, so the clone stays
// valid after the producing context is reused. The Crash report is
// already owned (allocated per compile).
func cloneResult(r Result) Result {
	if r.Coverage != nil {
		r.Coverage = r.Coverage.Clone()
	}
	if r.Feats != nil {
		r.Feats = maps.Clone(r.Feats)
	}
	if len(r.Diagnostics) > 0 {
		r.Diagnostics = append([]string(nil), r.Diagnostics...)
	} else {
		r.Diagnostics = nil
	}
	if r.Object != nil {
		o := *r.Object
		o.Instrs = append([]AsmInstr(nil), r.Object.Instrs...)
		r.Object = &o
	}
	return r
}
