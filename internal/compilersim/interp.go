package compilersim

import (
	"fmt"
	"math"

	"github.com/icsnju/metamut-go/internal/compilersim/ir"
)

// The IR interpreter executes compiled programs, which enables
// differential testing across optimization levels — the miscompilation-
// detection channel that generators like Csmith rely on (Section 6's
// related work), complementing the crash channel the paper's fuzzers use.
//
// Memory model: every global and every local slot owns a fixed-size byte
// buffer; pointers are tagged 64-bit encodings of (space, frame, slot,
// offset). Loads and stores move 8 bytes. The model is internally
// consistent rather than exactly C — what matters for differential
// testing is that -O0 and -O2 must agree on it.

// ExecStatus classifies an execution.
type ExecStatus int

// Execution outcomes.
const (
	ExecOK ExecStatus = iota
	ExecTrap
	ExecTimeout
)

var execStatusNames = [...]string{"ok", "trap", "timeout"}

// String returns the status label.
func (s ExecStatus) String() string { return execStatusNames[s] }

// ExecResult is one program execution's outcome.
type ExecResult struct {
	Status ExecStatus
	// Return is the entry function's return value (valid when OK).
	Return int64
	// TrapMsg describes the trap (abort, bad pointer, ...).
	TrapMsg string
	// Steps is the number of executed instructions.
	Steps int
	// Output collects printf/puts/putchar byte counts (a cheap stand-in
	// for stdout comparison).
	Output int
}

// slotSize is the byte buffer size backing each local slot and the
// minimum granted to globals.
const slotSize = 256

// pointer encoding: bit63 set | space(1b at 62: 0=global,1=local) |
// frame(14b) | slot(16b) | offset(20b).
const (
	ptrFlag   = int64(-1) << 63 // bit 63
	spaceBit  = int64(1) << 62
	frameMask = int64(1<<14 - 1)
	slotMask  = int64(1<<16 - 1)
	offMask   = int64(1<<20 - 1)
)

func encodePtr(local bool, frame, slot, off int64) int64 {
	p := ptrFlag | (frame&frameMask)<<36 | (slot&slotMask)<<20 | (off & offMask)
	if local {
		p |= spaceBit
	}
	return p
}

func isPtr(v int64) bool { return v&ptrFlag != 0 }

func decodePtr(v int64) (local bool, frame, slot, off int64) {
	return v&spaceBit != 0, (v >> 36) & frameMask, (v >> 20) & slotMask, v & offMask
}

// Interp executes IR programs.
type Interp struct {
	prog *ir.Program
	// globals holds each global's backing store.
	globals [][]byte
	// frames is the live call stack; pointers into dead frames trap.
	frames []*frame
	// MaxSteps bounds execution (default 200k).
	MaxSteps int
	// MaxDepth bounds recursion.
	MaxDepth int

	steps  int
	output int
}

type frame struct {
	fn     *ir.Func
	id     int64
	locals [][]byte
	temps  map[int64]int64
	params []int64
	alive  bool
}

// NewInterp prepares an interpreter over prog.
func NewInterp(prog *ir.Program) *Interp {
	in := &Interp{prog: prog, MaxSteps: 200000, MaxDepth: 64}
	for _, g := range prog.Globals {
		size := g.Size
		if size < slotSize {
			size = slotSize
		}
		buf := make([]byte, size)
		copy(buf, g.Data)
		in.globals = append(in.globals, buf)
	}
	return in
}

// trapErr signals a trap through the call stack.
type trapErr struct{ msg string }

func (e trapErr) Error() string { return e.msg }

// Execute runs the named entry function with integer arguments.
func (in *Interp) Execute(entry string, args []int64) ExecResult {
	fn := in.prog.FuncByName(entry)
	if fn == nil {
		return ExecResult{Status: ExecTrap, TrapMsg: "no entry " + entry}
	}
	in.steps, in.output = 0, 0
	ret, err := in.call(fn, args)
	res := ExecResult{Return: ret, Steps: in.steps, Output: in.output}
	switch e := err.(type) {
	case nil:
		res.Status = ExecOK
	case trapErr:
		if e.msg == "timeout" {
			res.Status = ExecTimeout
		} else {
			res.Status = ExecTrap
		}
		res.TrapMsg = e.msg
	default:
		res.Status = ExecTrap
		res.TrapMsg = err.Error()
	}
	return res
}

func (in *Interp) call(fn *ir.Func, args []int64) (int64, error) {
	if len(in.frames) >= in.MaxDepth {
		return 0, trapErr{"stack overflow"}
	}
	fr := &frame{
		fn: fn, id: int64(len(in.frames)),
		temps: map[int64]int64{}, params: args, alive: true,
	}
	for i := 0; i < fn.Locals; i++ {
		fr.locals = append(fr.locals, make([]byte, slotSize))
	}
	in.frames = append(in.frames, fr)
	defer func() {
		fr.alive = false
		in.frames = in.frames[:len(in.frames)-1]
	}()

	if len(fn.Blocks) == 0 {
		return 0, nil
	}
	blockID := 0
	for {
		if blockID < 0 || blockID >= len(fn.Blocks) {
			return 0, trapErr{"branch out of range"}
		}
		b := fn.Blocks[blockID]
		if len(b.Instrs) == 0 {
			// A DCE-emptied block: fall through to the next one.
			blockID++
			if blockID >= len(fn.Blocks) {
				return 0, nil
			}
			continue
		}
		next, ret, done, err := in.execBlock(fr, b)
		if err != nil {
			return 0, err
		}
		if done {
			return ret, nil
		}
		blockID = int(next)
	}
}

// execBlock runs one block; returns the successor, or done with a return
// value.
func (in *Interp) execBlock(fr *frame, b *ir.Block) (next int64, ret int64, done bool, err error) {
	for i := range b.Instrs {
		if in.steps++; in.steps > in.MaxSteps {
			return 0, 0, false, trapErr{"timeout"}
		}
		instr := &b.Instrs[i]
		switch instr.Op {
		case ir.OpNop:
		case ir.OpConst, ir.OpCopy, ir.OpConvert:
			fr.temps[instr.Dst.ID], err = in.value(fr, instr.A)
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpShl,
			ir.OpShr, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpCmpEQ, ir.OpCmpNE,
			ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE,
			ir.OpVecAdd, ir.OpVecMul:
			var a, bv int64
			if a, err = in.value(fr, instr.A); err == nil {
				if bv, err = in.value(fr, instr.B); err == nil {
					fr.temps[instr.Dst.ID], err = in.binop(instr, a, bv)
				}
			}
		case ir.OpNeg:
			var a int64
			if a, err = in.value(fr, instr.A); err == nil {
				if instr.Float {
					fr.temps[instr.Dst.ID] = int64(math.Float64bits(
						-math.Float64frombits(uint64(a))))
				} else {
					fr.temps[instr.Dst.ID] = -a
				}
			}
		case ir.OpNot:
			var a int64
			if a, err = in.value(fr, instr.A); err == nil {
				fr.temps[instr.Dst.ID] = ^a
			}
		case ir.OpLNot:
			var a int64
			if a, err = in.value(fr, instr.A); err == nil {
				fr.temps[instr.Dst.ID] = b2i(a == 0)
			}
		case ir.OpAddr:
			fr.temps[instr.Dst.ID], err = in.address(fr, instr.A, instr.B)
		case ir.OpLoad:
			// Parameters live in registers, not memory: a load with a
			// parameter base reads the slot directly.
			if instr.A.Kind == ir.VParam {
				fr.temps[instr.Dst.ID], err = in.value(fr, instr.A)
				break
			}
			var p int64
			if p, err = in.loadAddress(fr, instr.A, instr.B); err == nil {
				fr.temps[instr.Dst.ID], err = in.read(p, instr.Width)
			}
		case ir.OpStore:
			if instr.A.Kind == ir.VParam {
				var v int64
				if v, err = in.value(fr, instr.C); err == nil {
					for int(instr.A.ID) >= len(fr.params) {
						fr.params = append(fr.params, 0)
					}
					fr.params[instr.A.ID] = v
				}
				break
			}
			var p, v int64
			if p, err = in.loadAddress(fr, instr.A, instr.B); err == nil {
				if v, err = in.value(fr, instr.C); err == nil {
					err = in.write(p, v, instr.Width)
				}
			}
		case ir.OpCall:
			fr.temps[instr.Dst.ID], err = in.dispatchCall(fr, instr)
		case ir.OpStrLen:
			var p int64
			if p, err = in.value(fr, instr.A); err == nil {
				fr.temps[instr.Dst.ID], err = in.strlen(p)
			}
		case ir.OpRet:
			var v int64
			if instr.A.Kind != ir.VNone {
				v, err = in.value(fr, instr.A)
			}
			return 0, v, true, err
		case ir.OpBr:
			if len(b.Succs) == 0 {
				return 0, 0, true, nil
			}
			return int64(b.Succs[0]), 0, false, nil
		case ir.OpCondBr:
			var c int64
			if c, err = in.value(fr, instr.A); err != nil {
				return 0, 0, false, err
			}
			if len(b.Succs) < 2 {
				return 0, 0, false, trapErr{"condbr without successors"}
			}
			if c != 0 {
				return int64(b.Succs[0]), 0, false, nil
			}
			return int64(b.Succs[1]), 0, false, nil
		case ir.OpSwitch:
			var c int64
			if c, err = in.value(fr, instr.A); err != nil {
				return 0, 0, false, err
			}
			for ci, val := range instr.Cases {
				if c == val && ci < len(b.Succs) {
					return int64(b.Succs[ci]), 0, false, nil
				}
			}
			if len(b.Succs) > len(instr.Cases) {
				return int64(b.Succs[len(instr.Cases)]), 0, false, nil
			}
			return 0, 0, true, nil
		default:
			err = trapErr{"unimplemented op " + instr.Op.String()}
		}
		if err != nil {
			return 0, 0, false, err
		}
	}
	// Fallthrough without explicit terminator.
	if len(b.Succs) > 0 {
		return int64(b.Succs[0]), 0, false, nil
	}
	return 0, 0, true, nil
}

func (in *Interp) binop(instr *ir.Instr, a, b int64) (int64, error) {
	if instr.Float {
		fa, fb := math.Float64frombits(uint64(a)), math.Float64frombits(uint64(b))
		var fr float64
		switch instr.Op {
		case ir.OpAdd, ir.OpVecAdd:
			fr = fa + fb
		case ir.OpSub:
			fr = fa - fb
		case ir.OpMul, ir.OpVecMul:
			fr = fa * fb
		case ir.OpDiv:
			fr = fa / fb
		case ir.OpCmpEQ:
			return b2i(fa == fb), nil
		case ir.OpCmpNE:
			return b2i(fa != fb), nil
		case ir.OpCmpLT:
			return b2i(fa < fb), nil
		case ir.OpCmpLE:
			return b2i(fa <= fb), nil
		case ir.OpCmpGT:
			return b2i(fa > fb), nil
		case ir.OpCmpGE:
			return b2i(fa >= fb), nil
		default:
			return 0, trapErr{"float op " + instr.Op.String()}
		}
		return int64(math.Float64bits(fr)), nil
	}
	switch instr.Op {
	case ir.OpAdd, ir.OpVecAdd:
		return a + b, nil
	case ir.OpSub:
		return a - b, nil
	case ir.OpMul, ir.OpVecMul:
		return a * b, nil
	case ir.OpDiv:
		if b == 0 {
			return 0, trapErr{"division by zero"}
		}
		return a / b, nil
	case ir.OpRem:
		if b == 0 {
			return 0, trapErr{"remainder by zero"}
		}
		return a % b, nil
	case ir.OpShl:
		return a << uint(b&63), nil
	case ir.OpShr:
		return a >> uint(b&63), nil
	case ir.OpAnd:
		return a & b, nil
	case ir.OpOr:
		return a | b, nil
	case ir.OpXor:
		return a ^ b, nil
	case ir.OpCmpEQ:
		return b2i(a == b), nil
	case ir.OpCmpNE:
		return b2i(a != b), nil
	case ir.OpCmpLT:
		return b2i(a < b), nil
	case ir.OpCmpLE:
		return b2i(a <= b), nil
	case ir.OpCmpGT:
		return b2i(a > b), nil
	case ir.OpCmpGE:
		return b2i(a >= b), nil
	}
	return 0, trapErr{"binop " + instr.Op.String()}
}

// value resolves an operand to its runtime value.
func (in *Interp) value(fr *frame, v ir.Value) (int64, error) {
	switch v.Kind {
	case ir.VNone:
		return 0, nil
	case ir.VConst:
		return v.ID, nil
	case ir.VFConst:
		return v.ID, nil // already Float64bits
	case ir.VTemp:
		return fr.temps[v.ID], nil
	case ir.VParam:
		if int(v.ID) < len(fr.params) {
			return fr.params[v.ID], nil
		}
		return 0, nil
	case ir.VGlobal:
		return encodePtr(false, 0, v.ID, 0), nil
	case ir.VLocal:
		return encodePtr(true, fr.id, v.ID, 0), nil
	case ir.VFunc:
		return v.ID, nil
	}
	return 0, trapErr{"operand kind"}
}

// address computes &(base + offset) as a tagged pointer.
func (in *Interp) address(fr *frame, base, off ir.Value) (int64, error) {
	o, err := in.value(fr, off)
	if err != nil {
		return 0, err
	}
	switch base.Kind {
	case ir.VGlobal:
		return encodePtr(false, 0, base.ID, o), nil
	case ir.VLocal:
		return encodePtr(true, fr.id, base.ID, o), nil
	case ir.VParam, ir.VTemp:
		// Base already holds a pointer value.
		bv, err := in.value(fr, base)
		if err != nil {
			return 0, err
		}
		if isPtr(bv) {
			return bv + o, nil
		}
		return bv + o, nil
	}
	return 0, trapErr{"address base"}
}

// loadAddress resolves a Load/Store (base, offset) pair.
func (in *Interp) loadAddress(fr *frame, base, off ir.Value) (int64, error) {
	return in.address(fr, base, off)
}

// buffer resolves a pointer to its backing store.
func (in *Interp) buffer(p int64) ([]byte, int64, error) {
	if !isPtr(p) {
		return nil, 0, trapErr{fmt.Sprintf("wild pointer %#x", uint64(p))}
	}
	local, frameID, slot, off := decodePtr(p)
	if local {
		if int(frameID) >= len(in.frames) || !in.frames[frameID].alive {
			return nil, 0, trapErr{"dangling local pointer"}
		}
		fr := in.frames[frameID]
		if int(slot) >= len(fr.locals) {
			return nil, 0, trapErr{"bad local slot"}
		}
		return fr.locals[slot], off, nil
	}
	if int(slot) >= len(in.globals) {
		return nil, 0, trapErr{"bad global"}
	}
	return in.globals[slot], off, nil
}

// accessWidth normalizes an instruction width (0 means 8 bytes).
func accessWidth(w int8) int64 {
	if w == 1 || w == 2 || w == 4 {
		return int64(w)
	}
	return 8
}

func (in *Interp) read(p int64, width int8) (int64, error) {
	w := accessWidth(width)
	buf, off, err := in.buffer(p)
	if err != nil {
		return 0, err
	}
	if off < 0 || off+w > int64(len(buf)) {
		return 0, trapErr{"out-of-bounds read"}
	}
	var v int64
	for i := w - 1; i >= 0; i-- {
		v = v<<8 | int64(buf[off+i])
	}
	// Sign-extend sub-word loads (the integer model is signed).
	if w < 8 {
		shift := uint(64 - 8*w)
		v = v << shift >> shift
	}
	return v, nil
}

func (in *Interp) write(p, v int64, width int8) error {
	w := accessWidth(width)
	buf, off, err := in.buffer(p)
	if err != nil {
		return err
	}
	if off < 0 || off+w > int64(len(buf)) {
		return trapErr{"out-of-bounds write"}
	}
	for i := int64(0); i < w; i++ {
		buf[off+i] = byte(v >> (8 * i))
	}
	return nil
}

func (in *Interp) strlen(p int64) (int64, error) {
	buf, off, err := in.buffer(p)
	if err != nil {
		return 0, err
	}
	for i := off; i < int64(len(buf)); i++ {
		if buf[i] == 0 {
			return i - off, nil
		}
	}
	return int64(len(buf)) - off, nil
}

// dispatchCall runs a user function or a builtin.
func (in *Interp) dispatchCall(fr *frame, instr *ir.Instr) (int64, error) {
	var args []int64
	for _, a := range instr.Args {
		v, err := in.value(fr, a)
		if err != nil {
			return 0, err
		}
		args = append(args, v)
	}
	if callee := in.prog.FuncByName(instr.Callee); callee != nil {
		return in.call(callee, args)
	}
	return in.builtin(instr.Callee, args)
}

func (in *Interp) builtin(name string, args []int64) (int64, error) {
	argOr := func(i int, def int64) int64 {
		if i < len(args) {
			return args[i]
		}
		return def
	}
	switch name {
	case "abort":
		return 0, trapErr{"abort called"}
	case "exit":
		return 0, trapErr{fmt.Sprintf("exit(%d)", argOr(0, 0))}
	case "printf", "puts", "fprintf":
		in.output++
		return 1, nil
	case "putchar":
		in.output++
		return argOr(0, 0), nil
	case "abs", "labs":
		v := argOr(0, 0)
		if v < 0 {
			v = -v
		}
		return v, nil
	case "rand":
		return 42, nil // deterministic "random"
	case "srand":
		return 0, nil
	case "strlen":
		return in.strlen(argOr(0, 0))
	case "memset":
		p, c, n := argOr(0, 0), argOr(1, 0), argOr(2, 0)
		buf, off, err := in.buffer(p)
		if err != nil {
			return 0, err
		}
		for i := int64(0); i < n && off+i < int64(len(buf)); i++ {
			buf[off+i] = byte(c)
		}
		return p, nil
	case "memcpy", "strcpy":
		dst, src := argOr(0, 0), argOr(1, 0)
		n := argOr(2, 32)
		db, do, err := in.buffer(dst)
		if err != nil {
			return 0, err
		}
		sb, so, err := in.buffer(src)
		if err != nil {
			return 0, err
		}
		for i := int64(0); i < n && do+i < int64(len(db)) && so+i < int64(len(sb)); i++ {
			db[do+i] = sb[so+i]
		}
		return dst, nil
	case "sprintf", "snprintf":
		// Model: write a short marker and return its length.
		p := argOr(0, 0)
		buf, off, err := in.buffer(p)
		if err != nil {
			return 0, err
		}
		marker := "out"
		for i := 0; i < len(marker) && off+int64(i) < int64(len(buf)); i++ {
			buf[off+int64(i)] = marker[i]
		}
		if off+int64(len(marker)) < int64(len(buf)) {
			buf[off+int64(len(marker))] = 0
		}
		return int64(len(marker)), nil
	case "fabs":
		f := math.Float64frombits(uint64(argOr(0, 0)))
		return int64(math.Float64bits(math.Abs(f))), nil
	case "sqrt":
		f := math.Float64frombits(uint64(argOr(0, 0)))
		return int64(math.Float64bits(math.Sqrt(f))), nil
	case "pow":
		a := math.Float64frombits(uint64(argOr(0, 0)))
		b := math.Float64frombits(uint64(argOr(1, 0)))
		return int64(math.Float64bits(math.Pow(a, b))), nil
	case "malloc", "calloc":
		// No heap model: hand out a fresh global-like buffer.
		in.globals = append(in.globals, make([]byte, slotSize))
		return encodePtr(false, 0, int64(len(in.globals)-1), 0), nil
	case "free":
		return 0, nil
	default:
		// Unknown external: a benign constant.
		return 0, nil
	}
}

// RunCompiled compiles src at the given options and executes main,
// returning both the compile and execution results.
func (c *Compiler) RunCompiled(src string, opts Options) (Result, ExecResult) {
	res := c.Compile(src, opts)
	if !res.OK {
		return res, ExecResult{Status: ExecTrap, TrapMsg: "did not compile"}
	}
	// Re-lower to IR with the requested optimization level (the driver
	// does not retain the program).
	return res, c.executeFresh(src, opts)
}

func (c *Compiler) executeFresh(src string, opts Options) ExecResult {
	tu, err := parseAndCheckSrc(src)
	if err != nil {
		return ExecResult{Status: ExecTrap, TrapMsg: "front-end"}
	}
	prog := GenerateIR(tu, nopTrace(), Features{})
	if opts.OptLevel >= 1 {
		Optimize(prog, c.enabledPasses(opts), nopTrace(), Features{})
	}
	return NewInterp(prog).Execute("main", nil)
}
