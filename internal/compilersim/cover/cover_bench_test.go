package cover

import (
	"math/rand"
	"sync"
	"testing"
)

// lockedMap is the benchmark baseline: the flat-bitset Map behind one
// global mutex — the pre-sharding SharedCoverage design, re-stated here
// over the *current* Map so the pair measures the locking strategy and
// nothing else. Keep it in sync with Map's API; BENCH_cover.json holds
// the committed before/after numbers (see docs/PERFORMANCE.md).
type lockedMap struct {
	mu sync.Mutex
	m  Map
}

func (l *lockedMap) MergeIfNew(m *Map) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.m.HasNew(m) {
		return false
	}
	l.m.Merge(m)
	return true
}

// benchMaps builds overlapping edge maps: a shared warm core every map
// carries plus a few private edges, so after the first merges almost
// every MergeIfNew is a pure novelty probe — the read-mostly steady
// state a campaign settles into, and exactly where a global mutex
// serializes and stripes don't.
func benchMaps(n int) []*Map {
	rng := rand.New(rand.NewSource(7))
	core := make([]uint32, 400)
	for i := range core {
		core[i] = uint32(rng.Intn(MapSize))
	}
	maps := make([]*Map, n)
	for i := range maps {
		m := NewMap()
		for _, e := range core {
			m.Set(e)
		}
		for j := 0; j < 32; j++ {
			m.Set(uint32(rng.Intn(MapSize)))
		}
		maps[i] = m
	}
	return maps
}

type mergeSink interface{ MergeIfNew(*Map) bool }

func benchMergeIfNew(b *testing.B, sink mergeSink) {
	maps := benchMaps(64)
	for _, m := range maps { // absorb the first-merge novelty burst
		sink.MergeIfNew(m)
	}
	b.SetParallelism(4)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			sink.MergeIfNew(maps[i%len(maps)])
			i++
		}
	})
}

func BenchmarkMergeIfNewGlobalLock(b *testing.B) {
	benchMergeIfNew(b, &lockedMap{})
}

func BenchmarkMergeIfNewSharded(b *testing.B) {
	benchMergeIfNew(b, &Sharded{})
}
