package cover

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetHasCount(t *testing.T) {
	m := NewMap()
	if m.Count() != 0 {
		t.Fatal("fresh map not empty")
	}
	m.Set(42)
	m.Set(42)
	m.Set(MapSize + 42) // wraps to the same bucket
	if !m.Has(42) {
		t.Error("edge 42 missing")
	}
	if m.Count() != 1 {
		t.Errorf("count = %d, want 1 (duplicates and wraps collapse)", m.Count())
	}
}

func TestMergeReportsNewEdges(t *testing.T) {
	a, b := NewMap(), NewMap()
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)
	if !a.HasNew(b) {
		t.Error("b has edge 3 that a lacks")
	}
	added := a.Merge(b)
	if added != 1 {
		t.Errorf("added = %d, want 1", added)
	}
	if a.HasNew(b) {
		t.Error("after merge nothing should be new")
	}
	if a.Count() != 3 {
		t.Errorf("count = %d, want 3", a.Count())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewMap()
	a.Set(7)
	c := a.Clone()
	c.Set(9)
	if a.Has(9) {
		t.Error("clone writes leaked into original")
	}
	if !c.Has(7) {
		t.Error("clone lost original edge")
	}
}

func TestTracerEdgesDependOnOrder(t *testing.T) {
	m1, m2 := NewMap(), NewMap()
	t1 := NewTracer(m1, "s")
	t1.HitStr("a")
	t1.HitStr("b")
	t2 := NewTracer(m2, "s")
	t2.HitStr("b")
	t2.HitStr("a")
	// Same sites in different order must produce different edge sets.
	if m1.Count() != 2 || m2.Count() != 2 {
		t.Fatalf("counts: %d %d", m1.Count(), m2.Count())
	}
	if !m1.HasNew(m2) && !m2.HasNew(m1) {
		t.Error("order-insensitive edges: a->b equals b->a")
	}
}

func TestTracerStageNamespacing(t *testing.T) {
	m1, m2 := NewMap(), NewMap()
	NewTracer(m1, "stage1").HitStr("x")
	NewTracer(m2, "stage2").HitStr("x")
	if !m1.HasNew(m2) && !m2.HasNew(m1) {
		t.Error("stage namespaces collide")
	}
}

// TestQuickMergeMonotone: merging never decreases the count and is
// idempotent.
func TestQuickMergeMonotone(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewMap(), NewMap()
		for i := 0; i < rng.Intn(200); i++ {
			a.Set(rng.Uint32())
		}
		for i := 0; i < rng.Intn(200); i++ {
			b.Set(rng.Uint32())
		}
		before := a.Count()
		a.Merge(b)
		mid := a.Count()
		a.Merge(b)
		after := a.Count()
		return mid >= before && mid >= b.Count() && after == mid
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickMergeEqualsUnion: count(a ∪ b) via Merge equals counting a
// bit-level union.
func TestQuickMergeEqualsUnion(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewMap(), NewMap()
		union := map[uint32]bool{}
		for i := 0; i < rng.Intn(300); i++ {
			e := rng.Uint32() & (MapSize - 1)
			a.Set(e)
			union[e] = true
		}
		for i := 0; i < rng.Intn(300); i++ {
			e := rng.Uint32() & (MapSize - 1)
			b.Set(e)
			union[e] = true
		}
		a.Merge(b)
		return a.Count() == len(union)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("abc") != HashString("abc") {
		t.Error("hash not deterministic")
	}
	if HashString("abc") == HashString("abd") {
		t.Error("suspiciously colliding hash")
	}
}
