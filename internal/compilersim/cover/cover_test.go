package cover

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetHasCount(t *testing.T) {
	m := NewMap()
	if m.Count() != 0 {
		t.Fatal("fresh map not empty")
	}
	m.Set(42)
	m.Set(42)
	m.Set(MapSize + 42) // wraps to the same bucket
	if !m.Has(42) {
		t.Error("edge 42 missing")
	}
	if m.Count() != 1 {
		t.Errorf("count = %d, want 1 (duplicates and wraps collapse)", m.Count())
	}
}

func TestMergeReportsNewEdges(t *testing.T) {
	a, b := NewMap(), NewMap()
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)
	if !a.HasNew(b) {
		t.Error("b has edge 3 that a lacks")
	}
	added := a.Merge(b)
	if added != 1 {
		t.Errorf("added = %d, want 1", added)
	}
	if a.HasNew(b) {
		t.Error("after merge nothing should be new")
	}
	if a.Count() != 3 {
		t.Errorf("count = %d, want 3", a.Count())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewMap()
	a.Set(7)
	c := a.Clone()
	c.Set(9)
	if a.Has(9) {
		t.Error("clone writes leaked into original")
	}
	if !c.Has(7) {
		t.Error("clone lost original edge")
	}
}

func TestTracerEdgesDependOnOrder(t *testing.T) {
	m1, m2 := NewMap(), NewMap()
	t1 := NewTracer(m1, "s")
	t1.HitStr("a")
	t1.HitStr("b")
	t2 := NewTracer(m2, "s")
	t2.HitStr("b")
	t2.HitStr("a")
	// Same sites in different order must produce different edge sets.
	if m1.Count() != 2 || m2.Count() != 2 {
		t.Fatalf("counts: %d %d", m1.Count(), m2.Count())
	}
	if !m1.HasNew(m2) && !m2.HasNew(m1) {
		t.Error("order-insensitive edges: a->b equals b->a")
	}
}

func TestTracerStageNamespacing(t *testing.T) {
	m1, m2 := NewMap(), NewMap()
	NewTracer(m1, "stage1").HitStr("x")
	NewTracer(m2, "stage2").HitStr("x")
	if !m1.HasNew(m2) && !m2.HasNew(m1) {
		t.Error("stage namespaces collide")
	}
}

// TestQuickMergeMonotone: merging never decreases the count and is
// idempotent.
func TestQuickMergeMonotone(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewMap(), NewMap()
		for i := 0; i < rng.Intn(200); i++ {
			a.Set(rng.Uint32())
		}
		for i := 0; i < rng.Intn(200); i++ {
			b.Set(rng.Uint32())
		}
		before := a.Count()
		a.Merge(b)
		mid := a.Count()
		a.Merge(b)
		after := a.Count()
		return mid >= before && mid >= b.Count() && after == mid
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickMergeEqualsUnion: count(a ∪ b) via Merge equals counting a
// bit-level union.
func TestQuickMergeEqualsUnion(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewMap(), NewMap()
		union := map[uint32]bool{}
		for i := 0; i < rng.Intn(300); i++ {
			e := rng.Uint32() & (MapSize - 1)
			a.Set(e)
			union[e] = true
		}
		for i := 0; i < rng.Intn(300); i++ {
			e := rng.Uint32() & (MapSize - 1)
			b.Set(e)
			union[e] = true
		}
		a.Merge(b)
		return a.Count() == len(union)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMap()
	for i := 0; i < 500; i++ {
		m.Set(rng.Uint32())
	}
	w := m.Words()
	if len(w) != MapSize/64 {
		t.Fatalf("words len = %d, want %d", len(w), MapSize/64)
	}
	m2 := NewMap()
	m2.Set(9999) // must be cleared by SetWords
	m2.SetWords(w)
	if m.HasNew(m2) || m2.HasNew(m) {
		t.Error("round-tripped map differs from original")
	}
	// Mutating the returned slice must not alias the map.
	w[0] = ^uint64(0)
	if m.Count() == m2.Count()+64 {
		t.Error("Words aliases the backing array")
	}
}

// TestShardedMatchesMap: sequences of MergeIfNew on the sharded map
// agree with the plain single-map semantics.
func TestShardedMatchesMap(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sh := NewSharded()
		plain := NewMap()
		for round := 0; round < 20; round++ {
			m := NewMap()
			for i := 0; i < rng.Intn(100); i++ {
				m.Set(rng.Uint32())
			}
			wantNew := plain.HasNew(m)
			plain.Merge(m)
			if sh.MergeIfNew(m) != wantNew {
				return false
			}
		}
		snap := sh.Snapshot()
		return sh.Count() == plain.Count() &&
			!snap.HasNew(plain) && !plain.HasNew(snap)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestShardedConcurrent hammers the sharded map from many goroutines;
// every published edge must survive (run under -race in the gate).
func TestShardedConcurrent(t *testing.T) {
	sh := NewSharded()
	want := NewMap()
	const workers, perWorker = 8, 400
	inputs := make([][]*Map, workers)
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < perWorker; i++ {
			m := NewMap()
			for j := 0; j < 1+rng.Intn(8); j++ {
				e := rng.Uint32()
				m.Set(e)
				want.Set(e)
			}
			inputs[w] = append(inputs[w], m)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ms []*Map) {
			defer wg.Done()
			for _, m := range ms {
				sh.MergeIfNew(m)
			}
		}(inputs[w])
	}
	wg.Wait()
	snap := sh.Snapshot()
	if snap.HasNew(want) || want.HasNew(snap) {
		t.Errorf("sharded map lost or invented edges: got %d want %d",
			snap.Count(), want.Count())
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("abc") != HashString("abc") {
		t.Error("hash not deterministic")
	}
	if HashString("abc") == HashString("abd") {
		t.Error("suspiciously colliding hash")
	}
}
