// Package cover implements AFL-style edge coverage for the simulated
// compiler. Every stage of the compiler calls Tracer.Hit with a stable
// site identifier; consecutive hits form edges (prev ^ cur style), so
// coverage reflects not just which decision points ran but in which
// order — exactly the branch-pair signal AFL-family fuzzers consume.
package cover

import "math/bits"

// MapSize is the number of edge buckets. A power of two so the edge hash
// can be masked. 64K matches AFL's classic map.
const MapSize = 1 << 16

// Map is a set of covered edges.
type Map struct {
	bits [MapSize / 64]uint64
}

// NewMap returns an empty coverage map.
func NewMap() *Map { return &Map{} }

// Set marks edge e as covered.
func (m *Map) Set(e uint32) {
	e &= MapSize - 1
	m.bits[e/64] |= 1 << (e % 64)
}

// Has reports whether edge e is covered.
func (m *Map) Has(e uint32) bool {
	e &= MapSize - 1
	return m.bits[e/64]&(1<<(e%64)) != 0
}

// Count returns the number of covered edges.
func (m *Map) Count() int {
	n := 0
	for _, w := range m.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Merge ORs other into m, returning the number of edges newly added.
func (m *Map) Merge(other *Map) int {
	added := 0
	for i, w := range other.bits {
		nw := m.bits[i] | w
		added += bits.OnesCount64(nw ^ m.bits[i])
		m.bits[i] = nw
	}
	return added
}

// HasNew reports whether other covers any edge m does not.
func (m *Map) HasNew(other *Map) bool {
	for i, w := range other.bits {
		if w&^m.bits[i] != 0 {
			return true
		}
	}
	return false
}

// Clone returns a copy of the map.
func (m *Map) Clone() *Map {
	c := &Map{}
	c.bits = m.bits
	return c
}

// Reset clears all edges.
func (m *Map) Reset() { m.bits = [MapSize / 64]uint64{} }

// Tracer feeds edges into a map. Each compiler stage uses its own tracer
// (seeded with a distinct stage tag) so identical site IDs in different
// stages map to different edges.
type Tracer struct {
	m    *Map
	prev uint32
}

// NewTracer returns a tracer writing into m, namespaced by stage.
func NewTracer(m *Map, stage string) *Tracer {
	return &Tracer{m: m, prev: HashString(stage)}
}

// Hit records the transition from the previous site to site.
func (t *Tracer) Hit(site uint32) {
	if t.m == nil {
		return
	}
	edge := (t.prev << 1) ^ site
	t.m.Set(edge)
	t.prev = site
}

// HitStr records a transition to a named site.
func (t *Tracer) HitStr(site string) { t.Hit(HashString(site)) }

// HitN records a named site parameterized by a small integer (e.g. a
// case-count bucket), producing distinct edges per value.
func (t *Tracer) HitN(site string, n int) {
	t.Hit(HashString(site) ^ uint32(n)*0x9e3779b9)
}

// HashString is a 32-bit FNV-1a hash.
func HashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
