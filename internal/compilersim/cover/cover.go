// Package cover implements AFL-style edge coverage for the simulated
// compiler. Every stage of the compiler calls Tracer.Hit with a stable
// site identifier; consecutive hits form edges (prev ^ cur style), so
// coverage reflects not just which decision points ran but in which
// order — exactly the branch-pair signal AFL-family fuzzers consume.
package cover

import (
	"math/bits"
	"sync"
)

// MapSize is the number of edge buckets. A power of two so the edge hash
// can be masked. 64K matches AFL's classic map.
const MapSize = 1 << 16

// Map is a set of covered edges.
type Map struct {
	bits [MapSize / 64]uint64
}

// NewMap returns an empty coverage map.
func NewMap() *Map { return &Map{} }

// Set marks edge e as covered.
func (m *Map) Set(e uint32) {
	e &= MapSize - 1
	m.bits[e/64] |= 1 << (e % 64)
}

// Has reports whether edge e is covered.
func (m *Map) Has(e uint32) bool {
	e &= MapSize - 1
	return m.bits[e/64]&(1<<(e%64)) != 0
}

// Count returns the number of covered edges.
func (m *Map) Count() int {
	n := 0
	for _, w := range m.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Merge ORs other into m, returning the number of edges newly added.
func (m *Map) Merge(other *Map) int {
	added := 0
	for i, w := range other.bits {
		nw := m.bits[i] | w
		added += bits.OnesCount64(nw ^ m.bits[i])
		m.bits[i] = nw
	}
	return added
}

// HasNew reports whether other covers any edge m does not.
func (m *Map) HasNew(other *Map) bool {
	for i, w := range other.bits {
		if w&^m.bits[i] != 0 {
			return true
		}
	}
	return false
}

// Clone returns a copy of the map.
func (m *Map) Clone() *Map {
	c := &Map{}
	c.bits = m.bits
	return c
}

// Reset clears all edges.
func (m *Map) Reset() { m.bits = [MapSize / 64]uint64{} }

// Words returns a copy of the backing bit array, for serialization
// (checkpoint snapshots). The slice length is always MapSize/64.
func (m *Map) Words() []uint64 {
	w := make([]uint64, len(m.bits))
	copy(w, m.bits[:])
	return w
}

// SetWords overwrites the map from a Words-style array. Short inputs
// leave the tail clear; long inputs are truncated.
func (m *Map) SetWords(w []uint64) {
	m.Reset()
	copy(m.bits[:], w)
}

// ---------------------------------------------------------------------
// Sharded — a lock-striped concurrent coverage map
// ---------------------------------------------------------------------

// shardCount stripes the map. 16 stripes of 64 words each keeps every
// stripe well over a cache line (no false sharing) while letting up to
// 16 writers merge disjoint regions concurrently.
const shardCount = 16

// shardWords is the number of 64-bit words per stripe.
const shardWords = MapSize / 64 / shardCount

// Sharded is a concurrency-safe coverage map striped across shardCount
// locks. Compared to one map behind one mutex, the hot steady-state
// path (a compilation that covered nothing new) takes only read locks,
// and writers contend only on the stripes their new edges land in.
type Sharded struct {
	shards [shardCount]covShard
}

type covShard struct {
	mu    sync.RWMutex
	words [shardWords]uint64
}

// NewSharded returns an empty sharded map.
func NewSharded() *Sharded { return &Sharded{} }

// MergeIfNew merges m and reports whether it contained unseen edges.
// Stripes are updated independently (the merge is not one atomic
// snapshot across stripes), which is exactly the guarantee fuzzing
// coverage needs: no edge is ever lost, and "new" is never reported for
// an edge some other goroutine already published.
func (s *Sharded) MergeIfNew(m *Map) bool {
	isNew := false
	for i := range s.shards {
		src := m.bits[i*shardWords : (i+1)*shardWords]
		// A single compilation covers a few hundred of 64K edges, so
		// most stripes of m are all-zero: skip them without locking.
		dirty := false
		for _, w := range src {
			if w != 0 {
				dirty = true
				break
			}
		}
		if !dirty {
			continue
		}
		sh := &s.shards[i]
		sh.mu.RLock()
		novel := false
		for j, w := range src {
			if w&^sh.words[j] != 0 {
				novel = true
				break
			}
		}
		sh.mu.RUnlock()
		if !novel {
			continue
		}
		sh.mu.Lock()
		for j, w := range src {
			if w&^sh.words[j] != 0 {
				isNew = true
				sh.words[j] |= w
			}
		}
		sh.mu.Unlock()
	}
	return isNew
}

// Count returns the number of covered edges.
func (s *Sharded) Count() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, w := range sh.words {
			n += bits.OnesCount64(w)
		}
		sh.mu.RUnlock()
	}
	return n
}

// Snapshot copies the current contents into a plain Map.
func (s *Sharded) Snapshot() *Map {
	m := NewMap()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		copy(m.bits[i*shardWords:(i+1)*shardWords], sh.words[:])
		sh.mu.RUnlock()
	}
	return m
}

// Tracer feeds edges into a map. Each compiler stage uses its own tracer
// (seeded with a distinct stage tag) so identical site IDs in different
// stages map to different edges.
type Tracer struct {
	m    *Map
	prev uint32
}

// NewTracer returns a tracer writing into m, namespaced by stage.
func NewTracer(m *Map, stage string) *Tracer {
	return &Tracer{m: m, prev: HashString(stage)}
}

// Hit records the transition from the previous site to site.
func (t *Tracer) Hit(site uint32) {
	if t.m == nil {
		return
	}
	edge := (t.prev << 1) ^ site
	t.m.Set(edge)
	t.prev = site
}

// ResetTo repoints a tracer at m with the given stage seed, equivalent
// to NewTracer(m, stage) when seed == HashString(stage). Per-stream
// compile contexts keep four Tracer values and re-seed them per
// compilation instead of allocating fresh tracers.
func (t *Tracer) ResetTo(m *Map, seed uint32) { t.m, t.prev = m, seed }

// HitStr records a transition to a named site.
func (t *Tracer) HitStr(site string) { t.Hit(HashString(site)) }

// HitNHash is HitN for a precomputed site hash: identical edges to
// HitN(site, n) when h == HashString(site), without hashing (or
// building) the site string on the hot path.
func (t *Tracer) HitNHash(h uint32, n int) {
	t.Hit(h ^ uint32(n)*0x9e3779b9)
}

// HitN records a named site parameterized by a small integer (e.g. a
// case-count bucket), producing distinct edges per value.
func (t *Tracer) HitN(site string, n int) {
	t.Hit(HashString(site) ^ uint32(n)*0x9e3779b9)
}

// HashString is a 32-bit FNV-1a hash.
func HashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
