package compilersim

import (
	"fmt"
	"strings"
)

// Component identifies the compiler module a defect lives in, matching
// the paper's Table 4 / Table 6 classification.
type Component int

// Compiler components.
const (
	FrontEnd Component = iota
	IRGen
	Opt
	BackEnd
)

var componentNames = [...]string{"Front-End", "IR", "Opt", "Back-End"}

// String returns the component name as printed in the paper's tables.
func (c Component) String() string { return componentNames[c] }

// CrashKind is the observable consequence of a triggered defect.
type CrashKind int

// Crash kinds (Table 6 "consequences").
const (
	AssertionFailure CrashKind = iota
	SegmentationFault
	Hang
)

var crashKindNames = [...]string{
	"Assertion Failure", "Segmentation Fault", "Hang",
}

// String returns the printable kind.
func (k CrashKind) String() string { return crashKindNames[k] }

// TriggerCtx is what a defect predicate can observe about a compilation.
type TriggerCtx struct {
	Source string
	Feats  Features
	// ParseOK / CheckOK report front-end outcomes; deep-stage predicates
	// only run when both are true.
	ParseOK bool
	CheckOK bool
	// OptLevel is the requested optimization level.
	OptLevel int
}

// Bug is one injected defect.
type Bug struct {
	ID        string
	Component Component
	Kind      CrashKind
	// MinOpt gates optimizer/back-end defects behind -O levels.
	MinOpt int
	// Frames are the top two stack frames of the simulated crash, the
	// dedup key used throughout the evaluation.
	Frames  [2]string
	Message string
	Trigger func(tc *TriggerCtx) bool
}

// CrashReport is the observable outcome of hitting a defect.
type CrashReport struct {
	BugID     string
	Component Component
	Kind      CrashKind
	Frames    [2]string
	Message   string
}

// Signature is the unique-crash identifier: the top two stack frames
// (Section 5.1: "a crash is uniquely identified by its top two stack
// frames").
func (c *CrashReport) Signature() string {
	return c.Frames[0] + "|" + c.Frames[1]
}

// ---------------------------------------------------------------------
// Helper predicates over raw source text (front-end bugs must be
// reachable from invalid inputs, since error-recovery paths crash too).
// ---------------------------------------------------------------------

func maxParenDepth(src string) int {
	depth, maxD := 0, 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '(':
			depth++
			if depth > maxD {
				maxD = depth
			}
		case ')':
			depth--
		}
	}
	return maxD
}

func maxBraceDepth(src string) int {
	depth, maxD := 0, 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '{':
			depth++
			if depth > maxD {
				maxD = depth
			}
		case '}':
			depth--
		}
	}
	return maxD
}

func longestIdent(src string) int {
	longest, cur := 0, 0
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(cur > 0 && c >= '0' && c <= '9') {
			cur++
			if cur > longest {
				longest = cur
			}
		} else {
			cur = 0
		}
	}
	return longest
}

func countByte(src string, b byte) int {
	n := 0
	for i := 0; i < len(src); i++ {
		if src[i] == b {
			n++
		}
	}
	return n
}

// frontBug builds a front-end defect entry.
func frontBug(id string, kind CrashKind, f1, f2, msg string,
	trig func(*TriggerCtx) bool) Bug {
	return Bug{ID: id, Component: FrontEnd, Kind: kind,
		Frames: [2]string{f1, f2}, Message: msg, Trigger: trig}
}

func deepBug(comp Component, id string, kind CrashKind, minOpt int,
	f1, f2, msg string, trig func(*TriggerCtx) bool) Bug {
	wrapped := func(tc *TriggerCtx) bool {
		if !tc.ParseOK || !tc.CheckOK {
			return false
		}
		return trig(tc)
	}
	return Bug{ID: id, Component: comp, Kind: kind, MinOpt: minOpt,
		Frames: [2]string{f1, f2}, Message: msg, Trigger: wrapped}
}

// ---------------------------------------------------------------------
// GCC defect corpus
// ---------------------------------------------------------------------

// gccBugs reproduces the *distribution* of defects the paper found in
// GCC: 16 front-end, 18 IR-gen, 14 optimization, 2 back-end (Table 6),
// with assertion failures dominating, a few segfaults and a few hangs.
func gccBugs() []Bug {
	var bugs []Bug
	// --- Front-end (16). Several are reachable from syntactically
	// invalid inputs: error-recovery crashes that byte-level fuzzers
	// excel at finding.
	bugs = append(bugs,
		frontBug("gcc-fe-1", SegmentationFault,
			"c_parser_postfix_expression", "c_parser_expression",
			"recursion limit in paren nesting",
			func(tc *TriggerCtx) bool { return maxParenDepth(tc.Source) >= 40 }),
		frontBug("gcc-fe-2", AssertionFailure,
			"c_lex_one_token", "cpp_interpret_string",
			"unterminated string at EOF",
			func(tc *TriggerCtx) bool {
				return !tc.ParseOK && countByte(tc.Source, '"')%2 == 1 &&
					countByte(tc.Source, '"') >= 5
			}),
		frontBug("gcc-fe-3", AssertionFailure,
			"c_parser_declaration", "finish_decl",
			"declarator stack underflow",
			func(tc *TriggerCtx) bool {
				return !tc.ParseOK && strings.Contains(tc.Source, "((((*")
			}),
		frontBug("gcc-fe-4", SegmentationFault,
			"ggc_internal_alloc", "c_parser_translation_unit",
			"oversized identifier overflows obstack",
			func(tc *TriggerCtx) bool { return longestIdent(tc.Source) >= 120 }),
		frontBug("gcc-fe-5", AssertionFailure,
			"c_parser_braced_init", "pop_init_level",
			"brace depth tracking desync",
			func(tc *TriggerCtx) bool { return maxBraceDepth(tc.Source) >= 24 }),
		frontBug("gcc-fe-6", AssertionFailure,
			"c_parser_switch_statement", "c_finish_case",
			"case label chain corruption",
			func(tc *TriggerCtx) bool {
				return strings.Count(tc.Source, "case") >= 26
			}),
		frontBug("gcc-fe-7", Hang,
			"c_parser_skip_to_end_of_block", "c_parser_error",
			"error recovery loops on stray '#'",
			func(tc *TriggerCtx) bool {
				return !tc.ParseOK && strings.Contains(tc.Source, "# #")
			}),
		frontBug("gcc-fe-8", AssertionFailure,
			"build_binary_op", "convert_arguments",
			"type stub leaked into argument conversion",
			func(tc *TriggerCtx) bool {
				return tc.ParseOK && !tc.CheckOK &&
					strings.Contains(tc.Source, "(((") &&
					strings.Contains(tc.Source, "&&")
			}),
		frontBug("gcc-fe-9", AssertionFailure,
			"grokdeclarator", "start_function",
			"nested function declarator confusion",
			func(tc *TriggerCtx) bool {
				return strings.Contains(tc.Source, ")(") &&
					strings.Count(tc.Source, "typedef") >= 3
			}),
		frontBug("gcc-fe-10", SegmentationFault,
			"c_common_type", "build_conditional_expr",
			"null type in conditional with complex",
			func(tc *TriggerCtx) bool {
				return strings.Contains(tc.Source, "_Complex") &&
					strings.Count(tc.Source, "?") >= 3
			}),
		frontBug("gcc-fe-11", AssertionFailure,
			"check_bitfield_type_and_width", "finish_struct",
			"bitfield width sentinel",
			func(tc *TriggerCtx) bool {
				return strings.Contains(tc.Source, ": 0") &&
					strings.Contains(tc.Source, "struct")
			}),
		frontBug("gcc-fe-12", AssertionFailure,
			"c_parser_label", "lookup_label",
			"duplicate label in error path",
			func(tc *TriggerCtx) bool {
				return !tc.CheckOK && strings.Count(tc.Source, "goto") >= 6
			}),
		frontBug("gcc-fe-13", AssertionFailure,
			"pushdecl", "duplicate_decls",
			"redeclaration chain cycle",
			func(tc *TriggerCtx) bool {
				return strings.Count(tc.Source, "extern") >= 5
			}),
		frontBug("gcc-fe-14", Hang,
			"c_parser_enum_specifier", "build_enumerator",
			"enormous enumerator value loop",
			func(tc *TriggerCtx) bool {
				return strings.Contains(tc.Source, "enum") &&
					strings.Contains(tc.Source, "99999999999999999999")
			}),
		frontBug("gcc-fe-15", AssertionFailure,
			"c_parser_asm_statement", "build_asm_expr",
			"stray asm clobber",
			func(tc *TriggerCtx) bool {
				return strings.Contains(tc.Source, "__asm")
			}),
		frontBug("gcc-fe-16", AssertionFailure,
			"convert_for_assignment", "c_finish_return",
			"return conversion of incomplete struct",
			func(tc *TriggerCtx) bool {
				return tc.ParseOK && !tc.CheckOK &&
					strings.Count(tc.Source, "return") >= 4 &&
					strings.Count(tc.Source, "struct") >= 2
			}),
	)
	// --- IR generation (18): require valid programs.
	bugs = append(bugs,
		deepBug(IRGen, "gcc-ir-1", AssertionFailure, 0,
			"fold_offsetof", "c_fold_array_ref",
			"__imag of cast pointer arithmetic (PR #111819)",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("expr.addrof.complex") ||
					(tc.Feats.Has("expr.cast.complex") && tc.Feats.Has("expr.addrof"))
			}),
		deepBug(IRGen, "gcc-ir-2", AssertionFailure, 0,
			"gimplify_switch_expr", "preprocess_case_label_vec",
			"empty switch arm vector",
			func(tc *TriggerCtx) bool {
				return tc.Feats["switch.arms"] >= 13
			}),
		deepBug(IRGen, "gcc-ir-3", AssertionFailure, 0,
			"gimplify_cond_expr", "shortcut_cond_expr",
			"deeply chained conditional lowering",
			func(tc *TriggerCtx) bool { return tc.Feats["expr.conditional"] >= 8 }),
		deepBug(IRGen, "gcc-ir-4", SegmentationFault, 0,
			"gimplify_compound_lval", "get_inner_reference",
			"scalar compound literal with braced init",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("expr.compoundlit.scalarbrace")
			}),
		deepBug(IRGen, "gcc-ir-5", AssertionFailure, 0,
			"gimplify_modify_expr", "gimplify_self_mod_expr",
			"self-modifying store chain",
			func(tc *TriggerCtx) bool {
				return tc.Feats["expr.member"] >= 9 && tc.Feats["expr.addrof"] >= 2
			}),
		deepBug(IRGen, "gcc-ir-6", AssertionFailure, 0,
			"gimple_goto_set_dest", "gimplify_statement_list",
			"label at end of function with no successor",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("fn.void.labels.noreturn") &&
					tc.Feats["stmt.goto"] >= 2
			}),
		deepBug(IRGen, "gcc-ir-7", AssertionFailure, 0,
			"create_tmp_var", "gimplify_init_constructor",
			"struct temp materialization",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("local.struct") && tc.Feats["expr.initlist"] >= 3
			}),
		deepBug(IRGen, "gcc-ir-8", AssertionFailure, 0,
			"gimplify_call_expr", "gimplify_arg",
			"call argument re-gimplification",
			func(tc *TriggerCtx) bool {
				return tc.Feats["expr.call"] >= 14 && tc.Feats["expr.conditional"] >= 2
			}),
		deepBug(IRGen, "gcc-ir-9", SegmentationFault, 0,
			"gimplify_addr_expr", "build_fold_addr_expr_loc",
			"address of vanished lvalue",
			func(tc *TriggerCtx) bool {
				return tc.Feats["expr.addrof"] >= 6 && tc.Feats["expr.cast"] >= 3
			}),
		deepBug(IRGen, "gcc-ir-10", AssertionFailure, 0,
			"gimplify_var_or_parm_decl", "omp_notice_variable",
			"volatile global in nested expression",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("global.volatile") && tc.Feats["expr.logical"] >= 6
			}),
		deepBug(IRGen, "gcc-ir-11", AssertionFailure, 0,
			"gimplify_body", "gimple_set_body",
			"function body with only dead gotos",
			func(tc *TriggerCtx) bool {
				return tc.Feats["stmt.goto"] >= 6 && tc.Feats["stmt.return"] == 0
			}),
		deepBug(IRGen, "gcc-ir-12", AssertionFailure, 0,
			"force_gimple_operand", "gimplify_expr",
			"indirect call through cast",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("expr.indirectcall") && tc.Feats["expr.cast"] >= 2
			}),
		deepBug(IRGen, "gcc-ir-13", AssertionFailure, 0,
			"gimplify_decl_expr", "gimple_add_tmp_var",
			"many locals in one block",
			func(tc *TriggerCtx) bool { return tc.Feats["local.array"] >= 8 }),
		deepBug(IRGen, "gcc-ir-14", AssertionFailure, 0,
			"gimplify_omp_workshare", "gimplify_and_add",
			"float arithmetic feeding switch",
			func(tc *TriggerCtx) bool {
				return tc.Feats["expr.floatarith"] >= 7 && tc.Feats["switch.arms"] >= 3
			}),
		deepBug(IRGen, "gcc-ir-15", Hang, 0,
			"gimplify_loop_expr", "gimplify_statement_list",
			"irreducible goto web",
			func(tc *TriggerCtx) bool {
				return tc.Feats["stmt.goto"] >= 5 && tc.Feats["loop.while"] >= 3 &&
					tc.Feats["stmt.label"] >= 3
			}),
		deepBug(IRGen, "gcc-ir-16", AssertionFailure, 0,
			"gimplify_init_ctor_eval", "categorize_ctor_elements",
			"nested initializer flattening",
			func(tc *TriggerCtx) bool { return tc.Feats["expr.initlist"] >= 7 }),
		deepBug(IRGen, "gcc-ir-17", AssertionFailure, 0,
			"get_initialized_tmp_var", "internal_get_tmp_var",
			"comma chain in initializer",
			func(tc *TriggerCtx) bool {
				return tc.Feats["expr.div"] >= 5 && tc.Feats["expr.conditional"] >= 2
			}),
		deepBug(IRGen, "gcc-ir-18", SegmentationFault, 0,
			"gimplify_target_expr", "gimple_add_tmp_var_fn",
			"struct cast rvalue temp",
			func(tc *TriggerCtx) bool { return tc.Feats.Has("expr.cast.struct") }),
	)
	// --- Optimization (14): require -O2.
	bugs = append(bugs,
		deepBug(Opt, "gcc-opt-1", Hang, 2,
			"vect_analyze_loop", "vect_determine_vectorization_factor",
			"loop vectorizer trip-count divergence (PR #111820)",
			func(tc *TriggerCtx) bool { return tc.Feats.Has("opt.vec.badtrip") }),
		deepBug(Opt, "gcc-opt-2", AssertionFailure, 2,
			"verify_range", "strlen_pass::handle_builtin_sprintf",
			"sprintf-to-strlen over unterminated buffer",
			func(tc *TriggerCtx) bool { return tc.Feats.Has("opt.strlen.unterminated") }),
		deepBug(Opt, "gcc-opt-3", AssertionFailure, 2,
			"tree_ssa_dominator_optimize", "cprop_into_stmt",
			"const-prop meets dead branch",
			func(tc *TriggerCtx) bool {
				return tc.Feats["opt.deadbranch"] >= 5 && tc.Feats["opt.folded"] >= 15
			}),
		deepBug(Opt, "gcc-opt-4", AssertionFailure, 2,
			"eliminate_dom_walker", "fully_constant_vn_reference_p",
			"CSE over vectorized block",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("opt.vectorized") && tc.Feats["opt.cse"] >= 8
			}),
		deepBug(Opt, "gcc-opt-5", AssertionFailure, 2,
			"simplify_binary_operation", "fold_binary_loc",
			"re-simplification oscillation",
			func(tc *TriggerCtx) bool { return tc.Feats["opt.simplified"] >= 20 }),
		deepBug(Opt, "gcc-opt-6", SegmentationFault, 2,
			"remove_unreachable_nodes", "delete_basic_block",
			"unreachable block with live edge",
			func(tc *TriggerCtx) bool { return tc.Feats["opt.deadblock"] >= 8 }),
		deepBug(Opt, "gcc-opt-7", AssertionFailure, 2,
			"vect_transform_loop", "vect_do_peeling",
			"peeling of multi-exit loop",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("opt.vectorized") && tc.Feats["opt.loops"] >= 5
			}),
		deepBug(Opt, "gcc-opt-8", AssertionFailure, 2,
			"ivopts_rewrite_use", "rewrite_use_nonlinear_expr",
			"induction rewrite on strength-reduced loop",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("opt.strengthreduced") &&
					tc.Feats["opt.countedloop"] >= 2 && tc.Feats["opt.folded"] >= 5
			}),
		deepBug(Opt, "gcc-opt-9", AssertionFailure, 2,
			"tree_loop_unroll", "estimate_unroll_factor",
			"unroll factor overflow on folded bound",
			func(tc *TriggerCtx) bool {
				return tc.Feats["opt.loops"] >= 5 && tc.Feats["opt.folded"] >= 12
			}),
		deepBug(Opt, "gcc-opt-10", Hang, 2,
			"dse_classify_store", "dse_optimize_stmt",
			"store-chain walk explosion",
			func(tc *TriggerCtx) bool { return tc.Feats["opt.deadinstr"] >= 45 }),
		deepBug(Opt, "gcc-opt-11", AssertionFailure, 2,
			"phi_translate", "compute_avail",
			"PRE over switch fallthrough web",
			func(tc *TriggerCtx) bool {
				return tc.Feats["switch.arms"] >= 9 && tc.Feats["opt.cse"] >= 5
			}),
		deepBug(Opt, "gcc-opt-12", AssertionFailure, 2,
			"fold_stmt", "maybe_fold_reference",
			"member fold through combined storage",
			func(tc *TriggerCtx) bool {
				return tc.Feats["expr.member"] >= 4 && tc.Feats["opt.folded"] >= 18
			}),
		deepBug(Opt, "gcc-opt-13", AssertionFailure, 2,
			"update_ssa", "insert_updated_phi_nodes_for",
			"SSA update after aggressive DCE",
			func(tc *TriggerCtx) bool {
				return tc.Feats["opt.deadblock"] >= 5 && tc.Feats["opt.deadinstr"] >= 25
			}),
		deepBug(Opt, "gcc-opt-14", AssertionFailure, 2,
			"loop_version", "tree_unswitch_single_loop",
			"unswitching a vectorized latch",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("opt.vectorized") && tc.Feats["loop.for"] >= 4 &&
					tc.Feats["opt.deadbranch"] >= 2
			}),
	)
	// --- Back-end (2).
	bugs = append(bugs,
		deepBug(BackEnd, "gcc-be-1", AssertionFailure, 2,
			"lra_assign", "assign_by_spills",
			"spill slot exhaustion with vector regs",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("be.highpressure") && tc.Feats.Has("be.vec")
			}),
		deepBug(BackEnd, "gcc-be-2", SegmentationFault, 2,
			"expand_case", "emit_case_dispatch_table",
			"jump table with folded-away default",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("be.jumptable") && tc.Feats["opt.deadbranch"] >= 4
			}),
	)
	return bugs
}

// ---------------------------------------------------------------------
// Clang defect corpus
// ---------------------------------------------------------------------

// clangBugs reproduces the Clang side of Table 6: 32 front-end, 27
// IR-gen, 8 optimization, 14 back-end defects are the paper's *reported*
// numbers; we seed a corpus with the same relative weighting at ~60%
// scale: 20 front-end, 18 IR-gen, 5 optimization, 9 back-end (total 52,
// exceeding GCC's 50 as in the paper). The first dozen entries are
// hand-written below; clangExtraBugs supplies parameterized variants.
func clangBugs() []Bug {
	bugs := clangExtraBugs()
	bugs = append(bugs,
		frontBug("clang-fe-1", SegmentationFault,
			"clang::Parser::ParseCastExpression", "clang::Parser::ParseParenExpression",
			"paren nesting overflow",
			func(tc *TriggerCtx) bool { return maxParenDepth(tc.Source) >= 35 }),
		frontBug("clang-fe-2", AssertionFailure,
			"clang::Lexer::LexTokenInternal", "clang::Lexer::LexCharConstant",
			"unterminated char literal recovery",
			func(tc *TriggerCtx) bool {
				return !tc.ParseOK && countByte(tc.Source, '\'')%2 == 1 &&
					countByte(tc.Source, '\'') >= 3
			}),
		frontBug("clang-fe-3", AssertionFailure,
			"clang::Sema::ActOnStartOfFunctionDef", "clang::Sema::CheckFunctionDeclaration",
			"K&R definition confusion",
			func(tc *TriggerCtx) bool {
				return !tc.CheckOK && strings.Count(tc.Source, "()") >= 9
			}),
		frontBug("clang-fe-4", AssertionFailure,
			"clang::Sema::BuildResolvedCallExpr", "clang::Sema::ConvertArgumentsForCall",
			"call conversion on error type",
			func(tc *TriggerCtx) bool {
				return tc.ParseOK && !tc.CheckOK &&
					strings.Count(tc.Source, "(") >= 12
			}),
		frontBug("clang-fe-5", SegmentationFault,
			"clang::ASTContext::getTypeInfo", "clang::Sema::BuildUnaryOp",
			"sizeof of incomplete enum",
			func(tc *TriggerCtx) bool {
				return strings.Contains(tc.Source, "sizeof(enum")
			}),
		frontBug("clang-fe-6", AssertionFailure,
			"clang::Parser::ParseInitializer", "clang::Parser::ParseBraceInitializer",
			"initializer brace tracking",
			func(tc *TriggerCtx) bool { return maxBraceDepth(tc.Source) >= 20 }),
		frontBug("clang-fe-7", Hang,
			"clang::Parser::SkipUntil", "clang::Parser::ParseCompoundStatementBody",
			"recovery loop after stray '}'",
			func(tc *TriggerCtx) bool {
				return !tc.ParseOK &&
					countByte(tc.Source, '}') > countByte(tc.Source, '{')+6
			}),
		frontBug("clang-fe-8", AssertionFailure,
			"clang::Sema::ActOnLabelStmt", "clang::Sema::ActOnGotoStmt",
			"label scope leak",
			func(tc *TriggerCtx) bool {
				return !tc.CheckOK && strings.Contains(tc.Source, "goto") &&
					strings.Count(tc.Source, ":") >= 8
			}),
		frontBug("clang-fe-9", AssertionFailure,
			"clang::Sema::CheckAssignmentConstraints", "clang::Sema::DiagnoseAssignmentResult",
			"assignment diag on vanished type",
			func(tc *TriggerCtx) bool {
				return tc.ParseOK && !tc.CheckOK &&
					strings.Count(tc.Source, "=") >= 24
			}),
		frontBug("clang-fe-10", AssertionFailure,
			"clang::Parser::ParseDeclarationSpecifiers", "clang::Sema::ActOnTypedefDeclarator",
			"typedef redefinition chain",
			func(tc *TriggerCtx) bool {
				return strings.Count(tc.Source, "typedef") >= 6
			}),
		frontBug("clang-fe-11", SegmentationFault,
			"clang::Sema::ActOnNumericConstant", "clang::NumericLiteralParser::NumericLiteralParser",
			"numeric literal with absurd suffix",
			func(tc *TriggerCtx) bool {
				return strings.Contains(tc.Source, "0xfffffffffffffffff")
			}),
		frontBug("clang-fe-12", AssertionFailure,
			"clang::Sema::ActOnFields", "clang::RecordDecl::completeDefinition",
			"record completion with error fields",
			func(tc *TriggerCtx) bool {
				return !tc.CheckOK && strings.Count(tc.Source, "struct") >= 6
			}),
	)
	bugs = append(bugs,
		deepBug(IRGen, "clang-ir-1", AssertionFailure, 0,
			"clang::CodeGen::CodeGenFunction::EmitBranchOnBoolExpr",
			"clang::CodeGen::CodeGenFunction::EmitGotoStmt",
			"no computation between jump and labels (issue #63762, Ret2V)",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("fn.void.labels.noreturn")
			}),
		deepBug(IRGen, "clang-ir-2", AssertionFailure, 0,
			"clang::CodeGen::CodeGenFunction::EmitCompoundLiteralExpr",
			"clang::CodeGen::AggExprEmitter::VisitInitListExpr",
			"scalar compound literal with nested braces (issue #69213, StructToInt)",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("expr.compoundlit.scalarbrace")
			}),
		deepBug(IRGen, "clang-ir-3", AssertionFailure, 0,
			"clang::CodeGen::CodeGenFunction::EmitComplexExpr",
			"clang::CodeGen::ComplexExprEmitter::EmitLoadOfLValue",
			"complex lvalue through cast",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("expr.cast.complex") || tc.Feats.Has("expr.addrof.complex")
			}),
		deepBug(IRGen, "clang-ir-4", AssertionFailure, 0,
			"clang::CodeGen::CodeGenFunction::EmitSwitchStmt",
			"clang::CodeGen::CodeGenFunction::EmitCaseStmt",
			"dense switch over narrow type",
			func(tc *TriggerCtx) bool { return tc.Feats["switch.arms"] >= 12 }),
		deepBug(IRGen, "clang-ir-5", SegmentationFault, 0,
			"clang::CodeGen::CodeGenFunction::EmitLValue",
			"clang::CodeGen::CodeGenFunction::EmitMemberExpr",
			"member of reinterpreted storage",
			func(tc *TriggerCtx) bool {
				return tc.Feats["expr.member"] >= 7 && tc.Feats["expr.cast"] >= 6
			}),
		deepBug(IRGen, "clang-ir-6", AssertionFailure, 0,
			"clang::CodeGen::CodeGenFunction::EmitCallExpr",
			"clang::CodeGen::CodeGenFunction::EmitCallArgs",
			"argument emission with conditionals",
			func(tc *TriggerCtx) bool {
				return tc.Feats["expr.call"] >= 13 && tc.Feats["expr.conditional"] >= 3
			}),
		deepBug(IRGen, "clang-ir-7", AssertionFailure, 0,
			"clang::CodeGen::CodeGenFunction::EmitAutoVarAlloca",
			"clang::CodeGen::CodeGenFunction::EmitAutoVarInit",
			"array alloca with flattened init",
			func(tc *TriggerCtx) bool {
				return tc.Feats["local.array"] >= 6 && tc.Feats["expr.initlist"] >= 3
			}),
		deepBug(IRGen, "clang-ir-8", Hang, 0,
			"clang::CodeGen::CodeGenFunction::EmitStmt",
			"clang::CodeGen::CodeGenFunction::EmitLabelStmt",
			"label web re-emission",
			func(tc *TriggerCtx) bool {
				return tc.Feats["stmt.goto"] >= 6 && tc.Feats["stmt.label"] >= 6
			}),
		deepBug(IRGen, "clang-ir-9", AssertionFailure, 0,
			"clang::CodeGen::CodeGenModule::EmitGlobalVarDefinition",
			"clang::CodeGen::CodeGenModule::GetAddrOfGlobalVar",
			"volatile global re-emission",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("global.volatile") && tc.Feats["expr.call"] >= 7
			}),
		deepBug(IRGen, "clang-ir-10", AssertionFailure, 0,
			"clang::CodeGen::CodeGenFunction::EmitScalarConversion",
			"clang::CodeGen::ScalarExprEmitter::EmitScalarCast",
			"chained narrowing conversions",
			func(tc *TriggerCtx) bool { return tc.Feats["expr.cast"] >= 11 }),
	)
	bugs = append(bugs,
		deepBug(Opt, "clang-opt-1", AssertionFailure, 2,
			"llvm::LoopVectorizationCostModel::computeMaxVF",
			"llvm::LoopVectorizePass::processLoop",
			"cost model on degenerate trip count",
			func(tc *TriggerCtx) bool { return tc.Feats.Has("opt.vec.badtrip") }),
		deepBug(Opt, "clang-opt-2", AssertionFailure, 2,
			"llvm::InstCombinerImpl::visitCallInst",
			"llvm::SimplifyLibCalls::optimizeSPrintF",
			"sprintf folding over aliased buffers",
			func(tc *TriggerCtx) bool { return tc.Feats.Has("opt.strlen.unterminated") }),
		deepBug(Opt, "clang-opt-3", Hang, 2,
			"llvm::GVNPass::processBlock", "llvm::GVNPass::performScalarPRE",
			"GVN ping-pong on simplified xors",
			func(tc *TriggerCtx) bool {
				return tc.Feats["opt.simplified"] >= 15 && tc.Feats["opt.cse"] >= 9
			}),
	)
	bugs = append(bugs,
		deepBug(BackEnd, "clang-be-1", AssertionFailure, 2,
			"llvm::SelectionDAGISel::SelectCodeCommon", "llvm::SelectionDAG::Legalize",
			"illegal vector node after folding",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("be.vec") && tc.Feats["opt.folded"] >= 8
			}),
		deepBug(BackEnd, "clang-be-2", AssertionFailure, 2,
			"llvm::RegAllocFast::allocateInstruction", "llvm::RegAllocFast::spillVirtReg",
			"spill of undefined vreg",
			func(tc *TriggerCtx) bool { return tc.Feats.Has("be.highpressure") }),
		deepBug(BackEnd, "clang-be-3", AssertionFailure, 2,
			"llvm::X86TargetLowering::LowerSwitch", "llvm::SwitchLoweringUtils::findJumpTables",
			"jump table over sparse cases",
			func(tc *TriggerCtx) bool { return tc.Feats.Has("be.jumptable") }),
		deepBug(BackEnd, "clang-be-4", SegmentationFault, 2,
			"llvm::MachineSink::SinkInstruction", "llvm::MachineBasicBlock::SplitCriticalEdge",
			"sinking across removed edge",
			func(tc *TriggerCtx) bool {
				return tc.Feats["opt.deadblock"] >= 4 && tc.Feats.Has("be.div")
			}),
		deepBug(BackEnd, "clang-be-5", AssertionFailure, 2,
			"llvm::DAGCombiner::visitMUL", "llvm::TargetLowering::BuildSDIV",
			"division strength reduction overflow",
			func(tc *TriggerCtx) bool {
				return tc.Feats["be.div"] >= 4 && tc.Feats.Has("opt.strengthreduced")
			}),
		deepBug(BackEnd, "clang-be-6", Hang, 2,
			"llvm::PeepholeOptimizer::runOnMachineFunction",
			"llvm::PeepholeOptimizer::optimizeCoalescableCopy",
			"peephole copy cycle",
			func(tc *TriggerCtx) bool {
				return tc.Feats.Has("be.highpressure") && tc.Feats["opt.cse"] >= 7
			}),
	)
	return bugs
}

// bugStats summarizes a corpus; used by tests and documentation.
func bugStats(bugs []Bug) map[string]int {
	out := map[string]int{}
	for _, b := range bugs {
		out[b.Component.String()]++
		out[b.Kind.String()]++
	}
	return out
}

var _ = fmt.Sprintf
