package compilersim

import (
	"fmt"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/compilersim/ir"
)

// Precomputed coverage-site hashes for every hot-path site whose name is
// built by string concatenation ("emit."+op, "stmt."+kind, ...). The
// full site string is hashed once here, at init, so the per-mutant inner
// loop emits bit-identical edges without allocating the name. Sites with
// constant names (e.g. "lex.eof", "be.spill") stay on HitStr/HitN —
// hashing a constant string allocates nothing.
var (
	// lexSiteHash[k] == HashString("lex." + TokenKind(k).String()).
	lexSiteHash [cast.TokShrEq + 1]uint32
	// astSiteHash[k] == HashString("ast." + NodeKind(k).String()).
	astSiteHash [cast.KindCommaExpr + 1]uint32
	// stmtSiteHash[k] == HashString("stmt." + NodeKind(k).String()).
	stmtSiteHash [cast.KindCommaExpr + 1]uint32
	// exprSiteHash[k] == HashString("expr." + NodeKind(k).String()).
	exprSiteHash [cast.KindCommaExpr + 1]uint32
	// emitSiteHash[op] == HashString("emit." + Op(op).String()).
	emitSiteHash [ir.OpIntrinsic + 1]uint32
	// beSiteHash[op] == HashString("be." + AsmOp(op).String()).
	beSiteHash [AReload + 1]uint32
	// builtinCallSite maps each builtin callee to
	// HashString("call." + name); all other callees share callUserSite.
	builtinCallSite map[string]uint32
	callUserSite    uint32
	// strGlobalNames[i] == fmt.Sprintf(".str%d", i) for small i, so
	// interning a string literal does not format a name per mutant.
	strGlobalNames [64]string
)

func init() {
	for k := range lexSiteHash {
		lexSiteHash[k] = cover.HashString("lex." + cast.TokenKind(k).String())
	}
	for k := range astSiteHash {
		name := cast.NodeKind(k).String()
		astSiteHash[k] = cover.HashString("ast." + name)
		stmtSiteHash[k] = cover.HashString("stmt." + name)
		exprSiteHash[k] = cover.HashString("expr." + name)
	}
	for op := range emitSiteHash {
		emitSiteHash[op] = cover.HashString("emit." + ir.Op(op).String())
	}
	for op := range beSiteHash {
		beSiteHash[op] = cover.HashString("be." + AsmOp(op).String())
	}
	builtinCallSite = make(map[string]uint32, len(builtinCallees))
	for name := range builtinCallees {
		builtinCallSite[name] = cover.HashString("call." + name)
	}
	callUserSite = cover.HashString("call.user")
	for i := range strGlobalNames {
		strGlobalNames[i] = fmt.Sprintf(".str%d", i)
	}
}

// strGlobalName returns the interned-string global's name for index idx.
func strGlobalName(idx int) string {
	if idx < len(strGlobalNames) {
		return strGlobalNames[idx]
	}
	return fmt.Sprintf(".str%d", idx)
}
