// Package metamut is the public API of the MetaMut reproduction: a
// framework that uses a large language model to invent, synthesize, and
// refine semantic-aware mutation operators for C programs, plus the
// coverage-guided compiler fuzzers (μCFuzz and the macro fuzzer) that
// consume them — a Go implementation of "The Mutators Reloaded: Fuzzing
// Compilers with Large Language Model Generated Mutation Operators"
// (ASPLOS 2024).
//
// The package re-exports the stable surface of the internal packages:
//
//   - mutator access and application (the 118 registered operators),
//   - the MetaMut generation pipeline over a pluggable LLM client,
//   - the simulated GCC/Clang compilers used as fuzzing targets,
//   - μCFuzz, the macro fuzzer, and the four baselines,
//   - the experiment harness reproducing the paper's tables and figures.
//
// See the examples/ directory for runnable walkthroughs.
package metamut

import (
	"math/rand"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/core"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/llm"
	"github.com/icsnju/metamut-go/internal/muast"
	_ "github.com/icsnju/metamut-go/internal/mutators" // register the 118 mutators
	"github.com/icsnju/metamut-go/internal/seeds"
)

// Mutator is a registered semantic-aware mutation operator.
type Mutator = muast.Mutator

// Manager is the mutation context (parsed program + rewriter + RNG).
type Manager = muast.Manager

// Category classifies mutators (Variable/Expression/Statement/Function/Type).
type Category = muast.Category

// Set identifies the generation campaign (Supervised/Unsupervised).
type Set = muast.Set

// Re-exported category and set constants.
const (
	CatVariable   = muast.CatVariable
	CatExpression = muast.CatExpression
	CatStatement  = muast.CatStatement
	CatFunction   = muast.CatFunction
	CatType       = muast.CatType
	Supervised    = muast.Supervised
	Unsupervised  = muast.Unsupervised
)

// Mutators returns all 118 registered mutators, sorted by name.
func Mutators() []*Mutator { return muast.All() }

// MutatorsBySet returns the supervised (M_s, 68) or unsupervised
// (M_u, 50) set.
func MutatorsBySet(s Set) []*Mutator { return muast.BySet(s) }

// LookupMutator returns the named mutator.
func LookupMutator(name string) (*Mutator, bool) { return muast.Lookup(name) }

// Mutate applies the named mutator once to the C program src using the
// given random stream. ok is false when the mutator found no applicable
// mutation instance or src does not compile.
func Mutate(src, mutatorName string, rng *rand.Rand) (mutant string, ok bool) {
	mu, found := muast.Lookup(mutatorName)
	if !found {
		return "", false
	}
	mgr, err := muast.NewManager(src, rng)
	if err != nil {
		return "", false
	}
	return mu.Apply(src, mgr)
}

// Compiler is a simulated C compiler profile used as the fuzzing target.
type Compiler = compilersim.Compiler

// CompileOptions selects optimization level and disabled passes.
type CompileOptions = compilersim.Options

// CompileResult is one compilation outcome (coverage, crash, object).
type CompileResult = compilersim.Result

// NewCompiler returns a simulated compiler; name is "gcc" or "clang".
func NewCompiler(name string, version int) *Compiler {
	return compilersim.New(name, version)
}

// Framework is the MetaMut generation pipeline (Figure 1).
type Framework = core.Framework

// LLMClient is the language-model interface the pipeline drives.
type LLMClient = llm.Client

// NewFramework wires the pipeline over a client; see NewSimulatedLLM.
func NewFramework(client LLMClient, seed int64) *Framework {
	return core.New(client, seed)
}

// NewSimulatedLLM returns the deterministic GPT-4 stand-in whose
// behaviour is calibrated to the paper's measurements.
func NewSimulatedLLM(seed int64) *llm.SimClient { return llm.NewSimClient(seed) }

// MuCFuzz is the paper's micro coverage-guided fuzzer (Algorithm 1).
type MuCFuzz = fuzz.MuCFuzz

// MacroFuzzer is the long-running bug-hunting fuzzer (Section 3.4).
type MacroFuzzer = fuzz.MacroFuzzer

// FuzzStats is the shared fuzzing accounting (coverage, crashes, ratios).
type FuzzStats = fuzz.Stats

// NewMuCFuzz builds a μCFuzz instance over a mutator set and seed pool.
func NewMuCFuzz(name string, comp *Compiler, mutators []*Mutator,
	seedPool []string, rng *rand.Rand) *MuCFuzz {
	return fuzz.NewMuCFuzz(name, comp, mutators, seedPool, rng)
}

// SeedCorpus deterministically synthesizes n compiler-test-suite-style
// seed programs.
func SeedCorpus(n int, seed int64) []string { return seeds.Generate(n, seed) }
