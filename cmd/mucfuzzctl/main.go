// Command mucfuzzctl is the thin client CLI for a mucfuzzd daemon.
//
//	mucfuzzctl -addr :8377 submit -tenant acme -steps 40000
//	mucfuzzctl -addr :8377 status j0001
//	mucfuzzctl -addr :8377 watch j0001
//	mucfuzzctl -addr :8377 cancel j0001
//	mucfuzzctl -addr :8377 results j0001
//	mucfuzzctl -addr :8377 list [-tenant acme]
//
// submit speaks the same versioned JobSpec schema the daemon persists;
// its flags mirror mucfuzz's campaign flags, so any local campaign can
// be re-run as a service job by copying the flag values.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/icsnju/metamut-go/internal/resil"
	"github.com/icsnju/metamut-go/internal/serve"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mucfuzzctl [-addr HOST:PORT] <submit|status|watch|cancel|results|list|health> [args]")
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "localhost:8377", "mucfuzzd address")
	retries := flag.Int("retries", 8,
		"transient connection-error retries for reads (watch/status/list; 0 disables)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
	}
	c := &serve.Client{Addr: *addr}
	if *retries > 0 {
		// Reads survive a daemon restart mid-watch: refused connections
		// retry under a bounded seeded backoff instead of exiting.
		c.Retry = &resil.Policy{MaxAttempts: *retries}
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = runSubmit(c, args)
	case "status":
		err = runStatus(c, args)
	case "watch":
		err = runWatch(c, args)
	case "cancel":
		err = runOne(c, args, "cancel", func(id string) error {
			if cerr := c.Cancel(id); cerr != nil {
				return cerr
			}
			fmt.Printf("job %s: cancellation requested (stops at the next barrier)\n", id)
			return nil
		})
	case "results":
		err = runOne(c, args, "results", func(id string) error {
			data, rerr := c.Results(id)
			if rerr != nil {
				return rerr
			}
			os.Stdout.Write(data)
			return nil
		})
	case "list":
		err = runList(c, args)
	case "health":
		h, herr := c.Health()
		if herr != nil {
			err = herr
		} else {
			fmt.Printf("active jobs: %d   tenants: %d   admission breaker: %s   disk level: %s\n",
				h.ActiveJobs, h.Tenants, h.Breaker, h.DiskLevel)
			if len(h.PausedTenants) > 0 {
				fmt.Printf("paused tenants: %s\n", strings.Join(h.PausedTenants, ", "))
			}
		}
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runOne handles the one-job-id subcommands.
func runOne(c *serve.Client, args []string, name string, fn func(id string) error) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: mucfuzzctl %s JOB_ID", name)
	}
	return fn(args[0])
}

func runSubmit(c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		tenant   = fs.String("tenant", "", "submitting tenant (required)")
		name     = fs.String("name", "", "human label for the job")
		compiler = fs.String("compiler", "gcc", "target profile: gcc or clang")
		set      = fs.String("set", "s", "mutator set: s, u, all")
		seed     = fs.Int64("seed", 1, "campaign seed")
		nSeeds   = fs.Int("seeds", 120, "seed corpus size")
		steps    = fs.Int("steps", 10000, "campaign step budget")
		streams  = fs.Int("streams", 16, "logical fuzzing streams")
		spe      = fs.Int("steps-per-epoch", 32, "per-stream steps between barriers")
		schedK   = fs.String("sched", "adaptive", "mutator scheduling policy: uniform or adaptive")
		noStatic = fs.Bool("no-static", false, "compile statically-invalid mutants (ablation)")
		doReduce = fs.Bool("reduce", false, "minimize triaged witnesses in the final report")
		wait     = fs.Bool("wait", false, "block until the job is terminal, then print results")
	)
	fs.Parse(args)
	spec := serve.JobSpec{
		SpecVersion: serve.JobSpecVersion,
		Tenant:      *tenant, Name: *name,
		Compiler: *compiler, MutatorSet: *set,
		Seed: *seed, SeedCount: *nSeeds, Steps: *steps,
		Streams: *streams, StepsPerEpoch: *spe, Sched: *schedK,
		NoStatic: *noStatic, Reduce: *doReduce,
	}
	id, err := c.Submit(spec)
	if err != nil {
		return err
	}
	fmt.Printf("submitted: %s\n", id)
	if !*wait {
		return nil
	}
	if err := watch(c, id); err != nil {
		return err
	}
	data, err := c.Results(id)
	if err != nil {
		return err
	}
	os.Stdout.Write(data)
	return nil
}

func runStatus(c *serve.Client, args []string) error {
	return runOne(c, args, "status", func(id string) error {
		st, err := c.Status(id)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	})
}

func runWatch(c *serve.Client, args []string) error {
	return runOne(c, args, "watch", func(id string) error { return watch(c, id) })
}

// watch polls the job until it is terminal, printing one progress line
// per state change or step-count advance.
func watch(c *serve.Client, id string) error {
	lastDone, lastState := -1, serve.JobState("")
	rec, err := c.Wait(id, 500*time.Millisecond, 0, func(r serve.JobRecord) {
		if r.Done == lastDone && r.State == lastState {
			return
		}
		lastDone, lastState = r.Done, r.State
		fmt.Printf("job %s [%s] %d/%d steps   %d epochs   %d edges   %d crashes\n",
			r.ID, r.State, r.Done, r.Spec.Steps, r.Epochs, r.Edges, r.Crashes)
	})
	if err != nil {
		return err
	}
	switch rec.State {
	case serve.Failed:
		return fmt.Errorf("job %s failed: %s", id, rec.Error)
	case serve.Quarantined:
		return fmt.Errorf("job %s quarantined: %s", id, rec.Error)
	}
	return nil
}

func runList(c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	tenant := fs.String("tenant", "", "filter by tenant")
	fs.Parse(args)
	recs, err := c.Jobs(*tenant)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-12s %-12s %10s %8s %8s  %s\n",
		"ID", "TENANT", "STATE", "STEPS", "EDGES", "CRASHES", "NAME")
	for _, r := range recs {
		fmt.Printf("%-8s %-12s %-12s %4d/%-5d %8d %8d  %s\n",
			r.ID, r.Tenant, r.State, r.Done, r.Spec.Steps, r.Edges, r.Crashes, r.Spec.Name)
	}
	return nil
}
