// Command metamut drives the mutator-generation pipeline: it runs the
// unsupervised campaign against the (simulated) LLM, prints each
// invocation's outcome, and summarizes validity and cost.
//
//	metamut -n 20            # 20 invocations
//	metamut -n 100 -v        # the paper's campaign size, verbose
//	metamut -list            # list the 118 registered mutators instead
//	metamut -lint -n 30      # statically lint 30 raw syntheses and exit
//	metamut -n 100 -no-static  # ablation: dynamic-only validation loop
//
// Observability: -stats-interval N prints a live status line every N
// invocations; -metrics-out/-trace-out write the final JSON snapshot
// and the JSONL span journal; -debug-addr serves /debug/metrics and
// /debug/pprof while the campaign runs.
//
// Fault tolerance: the model client runs behind a circuit breaker —
// -breaker-threshold consecutive throttles open it, calls are then
// refused up-front (outcome "deferred") until -breaker-cooldown denials
// admit a half-open probe. -breaker-threshold 0 disables it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/icsnju/metamut-go/internal/core"
	"github.com/icsnju/metamut-go/internal/experiments"
	"github.com/icsnju/metamut-go/internal/llm"
	"github.com/icsnju/metamut-go/internal/muast"
	_ "github.com/icsnju/metamut-go/internal/mutators"
	"github.com/icsnju/metamut-go/internal/mutcheck"
	"github.com/icsnju/metamut-go/internal/mutdsl"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/resil"
)

func main() {
	var (
		n          = flag.Int("n", 20, "number of MetaMut invocations")
		seed       = flag.Int64("seed", 1, "random seed")
		verbose    = flag.Bool("v", false, "print each invocation")
		list       = flag.Bool("list", false, "list registered mutators and exit")
		transcript = flag.Bool("transcript", false, "print the model chat log")
		compound   = flag.Bool("compound", false, "allow two-action (compound) inventions — the paper's future-work template extension")
		lint       = flag.Bool("lint", false, "statically lint -n raw syntheses (no refinement) and exit")
		noStatic   = flag.Bool("no-static", false, "ablation: disable the mutcheck linter; every defect costs a compile-and-run round")
		breakerTh  = flag.Int("breaker-threshold", 5, "consecutive API throttles before the circuit breaker opens (0 = no breaker)")
		breakerCd  = flag.Int("breaker-cooldown", 8, "deferred calls before the open breaker admits a half-open probe")
	)
	cli := obs.BindCLIFlags()
	flag.Parse()

	if *list {
		for _, mu := range muast.All() {
			marker := " "
			if mu.Creative {
				marker = "*"
			}
			fmt.Printf("%-36s %-10s %-12s %s\n",
				mu.Name, mu.Category, mu.Set, marker)
		}
		fmt.Printf("\n%d mutators (* = creative, off-template)\n", len(muast.All()))
		return
	}

	reg := obs.NewRegistry()
	shutdown, err := cli.Activate(reg, "metamut")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Pre-register the event-gated pipeline families so -metrics-out
	// snapshots carry the full schema even on quiet runs.
	core.RegisterMetrics(reg)
	llm.RegisterMetrics(reg)
	resil.RegisterMetrics(reg)

	if *lint {
		runLint(llm.NewSimClient(*seed), *n, *compound)
		return
	}

	rec := llm.NewRecorder(llm.NewSimClient(*seed))
	rec.Instrument(reg)
	var client llm.Client = rec
	if *breakerTh > 0 {
		br := resil.NewBreaker(resil.BreakerConfig{
			FailureThreshold: *breakerTh,
			Cooldown:         *breakerCd,
		}, reg)
		// Journal breaker transitions alongside the span trace so a
		// post-mortem can see exactly when the model client degraded.
		br.SetTransitionHook(func(from, to resil.State) {
			reg.Journal().Event("breaker", map[string]any{
				"from": from.String(), "to": to.String(),
			})
		})
		client = llm.Guard(rec, br)
	}
	fw := core.New(client, *seed+1)
	fw.Obs = reg
	fw.NoStatic = *noStatic
	fw.Params.AllowCompound = *compound

	sp := reg.Span("campaign")
	valid := 0
	results := fw.RunUnsupervisedProgress(*n, func(i int, r core.Result) {
		if r.Outcome == core.Valid {
			valid++
		}
		if cli.StatsInterval > 0 && i%cli.StatsInterval == 0 {
			u := rec.TotalUsage()
			fmt.Printf("[stats] invocations=%-4d valid=%-4d tokens=%-8d wait=%s\n",
				i, valid, u.TotalTokens(), u.Wait.Round(1e9))
		}
	})
	sp.EndWith(map[string]any{"invocations": *n, "valid": valid})

	for i, r := range results {
		if !*verbose {
			continue
		}
		name := "-"
		if r.Program != nil {
			name = r.Program.Name
		}
		fmt.Printf("#%03d %-34s %-26s tokens=%-6d qa=%-2d $%.2f fixes=%v\n",
			i+1, name, r.Outcome, r.Cost.TotalTokens(), r.Cost.TotalQA(),
			r.Cost.DollarCost(), r.FixedByGoal)
	}
	st := core.Analyze(results)
	fmt.Printf("\ninvocations: %d   valid: %d (%.1f%% of %d survived)\n",
		st.Invocations, st.ValidCount(),
		100*float64(st.ValidCount())/float64(max(1, st.SurvivedInvocations())),
		st.SurvivedInvocations())
	fmt.Printf("outcomes: %v\n", st.ByOutcome)
	fmt.Println()
	fmt.Println(experiments.Table1(st))
	fmt.Println(experiments.Table2(st))
	fmt.Println(experiments.Table3(st))
	if !*noStatic {
		staticN, dynamicN := 0, 0
		for _, v := range st.StaticCatches {
			staticN += v
		}
		for _, v := range st.DynamicCatches {
			dynamicN += v
		}
		fmt.Printf("shift-left: %d defects caught statically, %d dynamically (%d feedback tokens saved)\n",
			staticN, dynamicN, st.TokensSaved)
	}
	if *transcript {
		fmt.Println("---- model transcript ----")
		fmt.Print(rec.Render())
	}

	if err := shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runLint synthesizes n raw mutator implementations (no refinement
// loop) and prints every mutcheck diagnostic, warnings included — the
// shift-left report an engineer would read before paying for dynamic QA.
func runLint(client llm.Client, n int, compound bool) {
	params := llm.DefaultParams()
	params.AllowCompound = compound
	perCheck := map[string]int{}
	clean, unlintable := 0, 0
	for i := 0; i < n; i++ {
		inv, _, err := client.Invent(llm.Actions, llm.Structures, nil, params)
		if err != nil {
			continue // throttled; lint mode just skips
		}
		prog, _, err := client.Synthesize(inv, params)
		if err != nil {
			continue
		}
		if _, cerr := mutdsl.Compile(prog); cerr != nil {
			// Goal #1 territory: nothing to lint until the source compiles.
			unlintable++
			fmt.Printf("#%03d %-34s does not compile: %v\n", i+1, prog.Name, cerr)
			continue
		}
		diags := mutcheck.Lint(prog)
		if len(diags) == 0 {
			clean++
			continue
		}
		fmt.Printf("#%03d %s\n", i+1, prog.Name)
		for _, d := range diags {
			perCheck[d.Check]++
			fmt.Printf("     %s\n", d)
		}
	}
	fmt.Printf("\nlinted %d syntheses: %d clean, %d uncompilable\n", n, clean, unlintable)
	var checks []string
	for c := range perCheck {
		checks = append(checks, c)
	}
	sort.Strings(checks)
	for _, c := range checks {
		fmt.Printf("  %-24s %d\n", c, perCheck[c])
	}
}
