// Command mucfuzz runs the μCFuzz micro fuzzer (or the macro fuzzer)
// against a simulated compiler profile and reports coverage, compilable
// ratio, and unique crashes.
//
//	mucfuzz -compiler gcc -steps 10000
//	mucfuzz -compiler clang -set u -steps 5000
//	mucfuzz -macro -workers 8 -steps 40000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/muast"
	_ "github.com/icsnju/metamut-go/internal/mutators"
	"github.com/icsnju/metamut-go/internal/reduce"
	"github.com/icsnju/metamut-go/internal/seeds"
)

func main() {
	var (
		compiler = flag.String("compiler", "gcc", "target profile: gcc or clang")
		set      = flag.String("set", "s", "mutator set: s (supervised), u (unsupervised), all")
		steps    = flag.Int("steps", 10000, "compilations to run")
		seed     = flag.Int64("seed", 1, "random seed")
		nSeeds   = flag.Int("seeds", 120, "seed corpus size")
		macro    = flag.Bool("macro", false, "run the macro fuzzer instead of μCFuzz")
		workers  = flag.Int("workers", 4, "macro-fuzzer parallel workers")
		doReduce = flag.Bool("reduce", false, "minimize each crashing input before printing")
	)
	flag.Parse()

	version := 14
	if *compiler == "clang" {
		version = 18
	}
	comp := compilersim.New(*compiler, version)
	pool := seeds.Generate(*nSeeds, *seed)

	var mutators []*muast.Mutator
	switch *set {
	case "s":
		mutators = muast.BySet(muast.Supervised)
	case "u":
		mutators = muast.BySet(muast.Unsupervised)
	default:
		mutators = muast.All()
	}

	var stats []*fuzz.Stats
	if *macro {
		shared := fuzz.NewSharedCoverage()
		var ws []*fuzz.MacroFuzzer
		for i := 0; i < *workers; i++ {
			ws = append(ws, fuzz.NewMacroFuzzer(
				fmt.Sprintf("macro-%d", i), comp, mutators, pool,
				rand.New(rand.NewSource(*seed+int64(i))), shared,
				fuzz.DefaultMacroConfig()))
		}
		fuzz.RunParallel(ws, *steps)
		for _, w := range ws {
			stats = append(stats, w.Stats())
		}
		fmt.Printf("shared coverage: %d edges\n", shared.Count())
	} else {
		f := fuzz.NewMuCFuzz("muCFuzz."+*set, comp, mutators, pool,
			rand.New(rand.NewSource(*seed)))
		for f.Stats().Ticks < *steps {
			f.Step()
		}
		stats = append(stats, f.Stats())
		fmt.Printf("pool grew to %d programs\n", f.PoolSize())
	}

	crashes := map[string]*fuzz.CrashInfo{}
	total, compilable, edges := 0, 0, 0
	for _, st := range stats {
		total += st.Total
		compilable += st.Compilable
		if c := st.Coverage.Count(); c > edges {
			edges = c
		}
		for sig, ci := range st.Crashes {
			if prev, ok := crashes[sig]; !ok || ci.FirstTick < prev.FirstTick {
				crashes[sig] = ci
			}
		}
	}
	fmt.Printf("target: %s-%d   mutants: %d   compilable: %.1f%%   edges: %d\n",
		*compiler, version, total, 100*float64(compilable)/float64(max(1, total)), edges)
	fmt.Printf("unique crashes: %d\n", len(crashes))
	var sigs []string
	for sig := range crashes {
		sigs = append(sigs, sig)
	}
	sort.Slice(sigs, func(i, j int) bool {
		return crashes[sigs[i]].FirstTick < crashes[sigs[j]].FirstTick
	})
	for _, sig := range sigs {
		c := crashes[sig]
		fmt.Printf("  t=%-7d [%s/%s] %s\n     via %s\n     frames: %s | %s\n",
			c.FirstTick, c.Report.Component, c.Report.Kind, c.Report.Message,
			c.Via, c.Report.Frames[0], c.Report.Frames[1])
		if *doReduce {
			oracle := reduce.CrashOracle(comp, compilersim.DefaultOptions(), sig)
			res := reduce.Reduce(c.Input, oracle, reduce.DefaultConfig())
			fmt.Printf("     reduced input (%d -> %d bytes):\n", len(c.Input), len(res.Output))
			for _, line := range strings.Split(strings.TrimSpace(res.Output), "\n") {
				fmt.Printf("       %s\n", line)
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
