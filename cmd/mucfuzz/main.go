// Command mucfuzz runs the μCFuzz micro fuzzer (or the macro fuzzer)
// against a simulated compiler profile and reports coverage, compilable
// ratio, and unique crashes.
//
//	mucfuzz -compiler gcc -steps 10000
//	mucfuzz -compiler clang -set u -steps 5000
//	mucfuzz -macro -workers 8 -steps 40000
//
// Observability: -stats-interval N prints a live status line every N
// steps; -metrics-out/-trace-out write the final JSON snapshot and the
// JSONL span journal; -debug-addr serves /debug/metrics and
// /debug/pprof while the campaign runs.
//
//	mucfuzz -steps 2000 -stats-interval 500 -metrics-out m.json -trace-out t.jsonl
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/llm"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/mutcheck"
	_ "github.com/icsnju/metamut-go/internal/mutators"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/reduce"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// statusPrinter emits the one-line live campaign status.
type statusPrinter struct {
	lastTime  time.Time
	lastTicks int
}

func newStatusPrinter() *statusPrinter {
	return &statusPrinter{lastTime: time.Now()}
}

// line prints the live status for the aggregated stats so far.
func (p *statusPrinter) line(st *fuzz.Stats) {
	now := time.Now()
	dt := now.Sub(p.lastTime).Seconds()
	rate := 0.0
	if dt > 0 {
		rate = float64(st.Ticks-p.lastTicks) / dt
	}
	fmt.Printf("[stats] ticks=%-8d ticks/s=%-8.0f edges=%-6d crashes=%-4d compilable=%.1f%%\n",
		st.Ticks, rate, st.Coverage.Count(), st.UniqueCrashes(),
		st.CompilableRatio())
	p.lastTime = now
	p.lastTicks = st.Ticks
}

func main() {
	var (
		compiler = flag.String("compiler", "gcc", "target profile: gcc or clang")
		set      = flag.String("set", "s", "mutator set: s (supervised), u (unsupervised), all")
		steps    = flag.Int("steps", 10000, "compilations to run")
		seed     = flag.Int64("seed", 1, "random seed")
		nSeeds   = flag.Int("seeds", 120, "seed corpus size")
		macro    = flag.Bool("macro", false, "run the macro fuzzer instead of μCFuzz")
		workers  = flag.Int("workers", 4, "macro-fuzzer parallel workers")
		doReduce = flag.Bool("reduce", false, "minimize each crashing input before printing")
		lint     = flag.Bool("lint", false, "statically analyze the seed corpus plus sampled mutants and exit")
		noStatic = flag.Bool("no-static", false, "ablation: compile statically-invalid mutants instead of filtering them")
	)
	cli := obs.BindCLIFlags()
	flag.Parse()

	reg := obs.NewRegistry()
	shutdown, err := cli.Activate(reg, "mucfuzz")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	version := 14
	if *compiler == "clang" {
		version = 18
	}
	comp := compilersim.New(*compiler, version)
	comp.Instrument(reg)

	sp := reg.Span("seed-gen")
	pool := seeds.Generate(*nSeeds, *seed)
	sp.End()

	var mutators []*muast.Mutator
	switch *set {
	case "s":
		mutators = muast.BySet(muast.Supervised)
	case "u":
		mutators = muast.BySet(muast.Unsupervised)
	default:
		mutators = muast.All()
	}
	// The arsenal was LLM-generated offline; surface the token spend it
	// embodies so campaign dashboards can relate throughput to cost.
	llm.RecordArsenalCost(reg, len(mutators))

	if *lint {
		runLint(pool, mutators, *seed)
		return
	}

	status := newStatusPrinter()
	var stats []*fuzz.Stats
	sp = reg.Span("fuzz")
	if *macro {
		shared := fuzz.NewSharedCoverage()
		cfg := fuzz.DefaultMacroConfig()
		cfg.StaticFilter = !*noStatic
		var ws []*fuzz.MacroFuzzer
		for i := 0; i < *workers; i++ {
			w := fuzz.NewMacroFuzzer(
				fmt.Sprintf("macro-%d", i), comp, mutators, pool,
				rand.New(rand.NewSource(*seed+int64(i))), shared,
				cfg)
			w.Stats().Instrument(reg)
			ws = append(ws, w)
		}
		fuzz.RunParallelProgress(ws, *steps, cli.StatsInterval, func(done int) {
			if cli.StatsInterval > 0 {
				agg := fuzz.NewStats("live")
				for _, w := range ws {
					agg.MergeFrom(w.Stats())
				}
				status.line(agg)
			}
		})
		for _, w := range ws {
			stats = append(stats, w.Stats())
		}
		fmt.Printf("shared coverage: %d edges\n", shared.Count())
	} else {
		f := fuzz.NewMuCFuzz("muCFuzz."+*set, comp, mutators, pool,
			rand.New(rand.NewSource(*seed)))
		f.StaticFilter = !*noStatic
		f.Stats().Instrument(reg)
		next := cli.StatsInterval
		for f.Stats().Ticks < *steps {
			f.Step()
			if cli.StatsInterval > 0 && f.Stats().Ticks >= next {
				status.line(f.Stats())
				next += cli.StatsInterval
			}
		}
		stats = append(stats, f.Stats())
		fmt.Printf("pool grew to %d programs\n", f.PoolSize())
	}
	sp.End()

	sp = reg.Span("report")
	agg := fuzz.NewStats("all")
	for _, st := range stats {
		agg.MergeFrom(st)
	}
	crashes := agg.Crashes
	fmt.Printf("target: %s-%d   mutants: %d   compilable: %.1f%%   edges: %d\n",
		*compiler, version, agg.Total, agg.CompilableRatio(),
		agg.Coverage.Count())
	if agg.StaticRejects > 0 {
		fmt.Printf("static filter: %d mutants rejected before compilation (%d ticks saved)\n",
			agg.StaticRejects, agg.StaticRejects)
	}
	fmt.Printf("unique crashes: %d\n", len(crashes))
	var sigs []string
	for sig := range crashes {
		sigs = append(sigs, sig)
	}
	// Deterministic report order: discovery tick, then signature, so
	// equal-seed runs print identical reports even when several crashes
	// share a tick.
	sort.Slice(sigs, func(i, j int) bool {
		ci, cj := crashes[sigs[i]], crashes[sigs[j]]
		if ci.FirstTick != cj.FirstTick {
			return ci.FirstTick < cj.FirstTick
		}
		return sigs[i] < sigs[j]
	})
	for _, sig := range sigs {
		c := crashes[sig]
		fmt.Printf("  t=%-7d [%s/%s] %s\n     via %s\n     frames: %s | %s\n",
			c.FirstTick, c.Report.Component, c.Report.Kind, c.Report.Message,
			c.Via, c.Report.Frames[0], c.Report.Frames[1])
		if *doReduce {
			oracle := reduce.CrashOracle(comp, compilersim.DefaultOptions(), sig)
			res := reduce.Reduce(c.Input, oracle, reduce.DefaultConfig())
			fmt.Printf("     reduced input (%d -> %d bytes):\n", len(c.Input), len(res.Output))
			for _, line := range strings.Split(strings.TrimSpace(res.Output), "\n") {
				fmt.Printf("       %s\n", line)
			}
		}
	}
	sp.End()

	if err := shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runLint is the standalone shift-left report: it semantically analyzes
// the seed corpus (which must be clean) and one sampled mutant per
// mutator, tallying diagnostics per check.
func runLint(pool []string, mutators []*muast.Mutator, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	perCheck := map[string]int{}
	tally := func(src string) (errs int) {
		for _, d := range mutcheck.Analyze(src) {
			perCheck[d.Check]++
			if d.Severity == mutcheck.Error {
				errs++
			}
		}
		return errs
	}
	seedErrs := 0
	for _, s := range pool {
		seedErrs += tally(s)
	}
	fmt.Printf("seed corpus: %d programs, %d front-end errors (want 0)\n",
		len(pool), seedErrs)

	sampled, rejected := 0, 0
	for _, mu := range mutators {
		p := pool[rng.Intn(len(pool))]
		mgr, err := muast.NewManager(p, rng)
		if err != nil {
			continue
		}
		mutant, ok := mu.Apply(p, mgr)
		if !ok {
			continue
		}
		sampled++
		if tally(mutant) > 0 {
			rejected++
			fmt.Printf("  %-36s would be statically rejected\n", mu.Name)
		}
	}
	fmt.Printf("sampled %d mutants (one per applicable mutator): %d statically rejected\n",
		sampled, rejected)
	var checks []string
	for c := range perCheck {
		checks = append(checks, c)
	}
	sort.Strings(checks)
	for _, c := range checks {
		fmt.Printf("  %-24s %d\n", c, perCheck[c])
	}
}
