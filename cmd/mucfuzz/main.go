// Command mucfuzz runs the μCFuzz micro fuzzer (or the macro fuzzer)
// against a simulated compiler profile and reports coverage, compilable
// ratio, and unique crashes.
//
//	mucfuzz -compiler gcc -steps 10000
//	mucfuzz -compiler clang -set u -steps 5000
//	mucfuzz -macro -workers 8 -steps 40000
//
// Macro campaigns run on the parallel engine: -streams logical fuzzing
// streams executed by -workers goroutines (results depend only on
// -seed/-streams/-steps, never on -workers). -checkpoint FILE snapshots
// the campaign periodically and on SIGINT; -resume FILE continues one,
// optionally with a larger -steps. -triage-out FILE writes the ranked
// crash-triage report as JSON; -reduce additionally minimizes each
// triaged witness.
//
//	mucfuzz -macro -steps 40000 -checkpoint c.json          # ^C any time
//	mucfuzz -macro -resume c.json -steps 80000 -triage-out bugs.json
//
// Observability: -stats-interval N prints a live status line every N
// steps (throughput EMAs, ETA from the remaining budget, stall flag);
// -metrics-out/-trace-out write the final JSON snapshot and the JSONL
// span journal; -debug-addr serves /debug/metrics, /debug/pprof, and —
// when the flight recorder is on — /debug/campaign (live JSON console)
// plus /debug/campaign/stream (SSE journal feed).
//
//	mucfuzz -steps 2000 -stats-interval 500 -metrics-out m.json -trace-out t.jsonl
//
// Flight recorder: -flight FILE journals every significant campaign
// event (barriers, checkpoints, mutator rewards, quarantine churn,
// crashes, watchdog anomalies) as JSONL keyed by logical time only —
// the journal is byte-identical at any -workers value for a fixed
// -seed. -flight-max-bytes caps the file (rotation keeps one .1
// generation); -flight-report prints the replayed campaign report at
// exit; -flight-baseline BENCH_sched.json arms the throughput-
// regression watchdog against the committed baseline.
//
//	mucfuzz -macro -steps 40000 -flight flight.jsonl -flight-report
//
// Scheduling and caching: -sched picks the mutator scheduling policy —
// "adaptive" (the default) runs a per-stream UCB bandit over mutator
// reward, "uniform" restores the legacy unbiased shuffle; a resumed
// campaign inherits the checkpoint's policy unless -sched is given
// explicitly. -mutant-cache N bounds the dedup cache in front of the
// compiler (0 disables); identical mutants compile once.
//
//	mucfuzz -macro -steps 40000 -sched uniform -mutant-cache 0   # ablation
//
// Fault injection: -chaos SEED arms the deterministic chaos harness on a
// macro campaign — worker panics before stream steps plus torn/failed
// checkpoint writes, all recoverable, so the results must match the
// fault-free run at the same -seed. A fault summary is printed at exit.
//
//	mucfuzz -macro -steps 40000 -checkpoint c.json -chaos 99
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/engine"
	"github.com/icsnju/metamut-go/internal/flight"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/llm"
	"github.com/icsnju/metamut-go/internal/muast"
	_ "github.com/icsnju/metamut-go/internal/mutators"
	"github.com/icsnju/metamut-go/internal/mutcheck"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/reduce"
	"github.com/icsnju/metamut-go/internal/resil"
	"github.com/icsnju/metamut-go/internal/resil/chaos"
	"github.com/icsnju/metamut-go/internal/sched"
	"github.com/icsnju/metamut-go/internal/seeds"
	"github.com/icsnju/metamut-go/internal/serve"
)

func main() {
	var (
		compiler  = flag.String("compiler", "gcc", "target profile: gcc or clang")
		set       = flag.String("set", "s", "mutator set: s (supervised), u (unsupervised), all")
		steps     = flag.Int("steps", 10000, "compilations to run")
		seed      = flag.Int64("seed", 1, "random seed")
		nSeeds    = flag.Int("seeds", 120, "seed corpus size")
		macro     = flag.Bool("macro", false, "run the macro fuzzer instead of μCFuzz")
		workers   = flag.Int("workers", 0, "macro campaign: goroutines executing the streams (0 = GOMAXPROCS; does not change results)")
		streams   = flag.Int("streams", 16, "macro campaign: logical fuzzing streams (campaign identity)")
		ckpt      = flag.String("checkpoint", "", "macro campaign: snapshot file, written every -checkpoint-every epochs and on SIGINT")
		ckptEvery = flag.Int("checkpoint-every", 8, "macro campaign: epochs between snapshots")
		resume    = flag.String("resume", "", "macro campaign: resume from this snapshot file")
		triageOut = flag.String("triage-out", "", "macro campaign: write the ranked triage report as JSON here")
		doReduce  = flag.Bool("reduce", false, "minimize each crashing input before printing")
		lint      = flag.Bool("lint", false, "statically analyze the seed corpus plus sampled mutants and exit")
		noStatic  = flag.Bool("no-static", false, "ablation: compile statically-invalid mutants instead of filtering them")
		chaosSeed = flag.Int64("chaos", 0, "macro campaign: arm the deterministic chaos harness with this fault seed (0 = off)")
		schedKind = flag.String("sched", "adaptive", "mutator scheduling policy: uniform or adaptive (UCB bandit)")
		cacheCap  = flag.Int("mutant-cache", 4096, "dedup cache over compile results: max entries (0 = off)")
		flightOut = flag.String("flight", "", "write the flight journal (JSONL, logical time only) to this file")
		flightMax = flag.Int64("flight-max-bytes", 64<<20, "rotate the flight journal after this many bytes (0 = unbounded)")
		flightRep = flag.Bool("flight-report", false, "print the replayed flight report at exit")
		flightBas = flag.String("flight-baseline", "", "BENCH_sched.json file arming the throughput-regression watchdog")
		submitTo  = flag.String("submit", "", "delegate the campaign to a mucfuzzd daemon at this address instead of running locally")
		tenant    = flag.String("tenant", "cli", "tenant id for -submit")
	)
	cli := obs.BindCLIFlags()
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *submitTo != "" {
		// Service delegation: the same flags become a serve.JobSpec — one
		// canonical job schema for the single-shot CLI and the daemon —
		// and the daemon runs the identical campaign (same seed, streams,
		// budget → same results as running locally).
		spec := serve.JobSpec{
			SpecVersion: serve.JobSpecVersion,
			Tenant:      *tenant,
			Compiler:    *compiler, MutatorSet: *set,
			Seed: *seed, SeedCount: *nSeeds, Steps: *steps,
			Streams: *streams, Sched: *schedKind,
			NoStatic: *noStatic, Reduce: *doReduce,
		}
		if err := submitJob(*submitTo, spec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	reg := obs.NewRegistry()
	// Pre-register the full campaign metric schema so snapshots and
	// /debug/metrics show every family from the first tick, not just
	// those that happened to fire already.
	fuzz.RegisterMetrics(reg)
	engine.RegisterMetrics(reg)
	sched.RegisterMetrics(reg)
	resil.RegisterMetrics(reg)
	flight.RegisterMetrics(reg)

	version := 14
	if *compiler == "clang" {
		version = 18
	}
	comp := compilersim.New(*compiler, version)
	comp.Instrument(reg)
	comp.EnableMutantCache(*cacheCap)

	var mutators []*muast.Mutator
	switch *set {
	case "s":
		mutators = muast.BySet(muast.Supervised)
	case "u":
		mutators = muast.BySet(muast.Unsupervised)
	default:
		mutators = muast.All()
	}
	if _, err := sched.New(*schedKind, len(mutators)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// A resume must be inspected before the recorder and scheduler are
	// built: the snapshot fixes the campaign identity (seed, streams,
	// budget, scheduler policy) and its Done count tells the recorder to
	// continue the journal rather than re-emit the campaign header.
	var preSnap *engine.Snapshot
	if *macro && *resume != "" {
		if snap, used, perr := engine.LoadWithFallback(*resume); perr == nil {
			preSnap = snap
			if used != *resume {
				fmt.Printf("primary checkpoint %s failed integrity check; resuming from %s\n",
					*resume, used)
			}
			// Like -seed/-streams/-steps, an unset -sched inherits the
			// snapshot's policy rather than contradicting it (Resume
			// rejects a posterior the worker cannot restore).
			if !explicit["sched"] && len(snap.StreamStates) > 0 &&
				snap.StreamStates[0].Sched != nil {
				*schedKind = snap.StreamStates[0].Sched.Kind
			}
		}
	}

	// Flight recorder: journal to -flight, or ring-only when just the
	// report or the live console is wanted.
	var rec *flight.Recorder
	var flightW *obs.RotatingWriter
	if *flightOut != "" || *flightRep || cli.DebugAddr != "" {
		if *flightOut != "" {
			w, werr := obs.OpenRotating(*flightOut, *flightMax)
			if werr != nil {
				fmt.Fprintln(os.Stderr, werr)
				os.Exit(1)
			}
			flightW = w
		}
		var wd flight.WatchdogConfig
		if *flightBas != "" {
			base, berr := flight.BenchBaseline(*flightBas, *schedKind)
			if berr != nil {
				fmt.Fprintln(os.Stderr, berr)
				os.Exit(1)
			}
			wd.BaselineEdgesPer1k = base
		}
		armNames := make([]string, len(mutators))
		for i, mu := range mutators {
			armNames[i] = mu.Name
		}
		fcfg := flight.Config{
			Streams:    *streams,
			TotalSteps: *steps,
			Seed:       *seed,
			Registry:   reg,
			ArmNames:   armNames,
			Watchdogs:  wd,
		}
		if flightW != nil {
			fcfg.Journal = flightW
		}
		if !*macro {
			fcfg.Streams = 1
		}
		if preSnap != nil {
			fcfg.Done = preSnap.Done
			fcfg.Seed = preSnap.Seed
			fcfg.Streams = preSnap.Streams
			if !explicit["steps"] {
				fcfg.TotalSteps = preSnap.TotalSteps
			}
		}
		rec = flight.NewRecorder(fcfg)
	}

	shutdown, err := cli.Activate(reg, "mucfuzz", flight.Routes(rec)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sp := reg.Span("seed-gen")
	pool := seeds.Generate(*nSeeds, *seed)
	sp.End()

	// The arsenal was LLM-generated offline; surface the token spend it
	// embodies so campaign dashboards can relate throughput to cost.
	llm.RecordArsenalCost(reg, len(mutators))

	if *lint {
		runLint(pool, mutators, *seed)
		return
	}

	status := flight.NewStatus()
	var stats []*fuzz.Stats
	var campaign *engine.Campaign
	sp = reg.Span("fuzz")
	if *macro {
		mcfg := fuzz.DefaultMacroConfig()
		mcfg.StaticFilter = !*noStatic
		factory := func(stream int, rng *rand.Rand, cov fuzz.CoverageSink) engine.Worker {
			w := fuzz.NewMacroFuzzer(fmt.Sprintf("macro-%d", stream), comp,
				mutators, pool, rng, cov, mcfg)
			s, serr := sched.New(*schedKind, len(mutators))
			if serr != nil {
				fmt.Fprintln(os.Stderr, serr)
				os.Exit(1)
			}
			w.Sched = s
			w.Stats().Instrument(reg)
			w.InstrumentSched(reg)
			if rec != nil {
				w.AttachFlight(rec.Stream(stream))
			}
			return w
		}
		ecfg := engine.Config{
			Streams:         *streams,
			Workers:         *workers,
			TotalSteps:      *steps,
			Seed:            *seed,
			CheckpointPath:  *ckpt,
			CheckpointEvery: *ckptEvery,
			Registry:        reg,
			Flight:          rec,
		}
		var inj *chaos.Injector
		if *chaosSeed != 0 {
			inj = chaos.NewInjector(chaos.Config{
				Seed:                *chaosSeed,
				StreamPanicEvery:    3,
				CheckpointTearEvery: 3,
				CheckpointFailEvery: 5,
			})
			ecfg.OnStreamStart = inj.OnStreamStart
			ecfg.CheckpointTransform = inj.CheckpointTransform
			fmt.Printf("chaos armed (fault seed %d): recoverable worker panics and checkpoint corruption\n", *chaosSeed)
		}
		var c *engine.Campaign
		if cli.StatsInterval > 0 {
			next := cli.StatsInterval
			ecfg.OnEpoch = func(done, total int) {
				if done < next {
					return
				}
				for next <= done {
					next += cli.StatsInterval
				}
				agg := c.MergedStats()
				fmt.Println("[stats] " + status.Line(done, total,
					agg.Coverage.Count(), len(agg.Crashes), agg.CompilableRatio()))
			}
		}
		if *resume != "" {
			// Flags left at their defaults inherit from the snapshot
			// instead of contradicting it.
			if !explicit["seed"] {
				ecfg.Seed = 0
			}
			if !explicit["streams"] {
				ecfg.Streams = 0
			}
			if !explicit["steps"] {
				ecfg.TotalSteps = 0
			}
			var rerr error
			if c, rerr = engine.Resume(*resume, ecfg, factory); rerr != nil {
				fmt.Fprintln(os.Stderr, rerr)
				os.Exit(1)
			}
			fmt.Printf("resumed from %s: %d/%d steps done, %d epochs\n",
				*resume, c.Done(), c.Config().TotalSteps, c.Epoch())
		} else {
			c = engine.New(ecfg, factory)
		}
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		runErr := c.Run(ctx)
		stopSignals()
		switch {
		case errors.Is(runErr, engine.ErrInterrupted) && *ckpt != "":
			fmt.Printf("interrupted at step %d; checkpoint written to %s (continue with -resume %s)\n",
				c.Done(), *ckpt, *ckpt)
		case errors.Is(runErr, engine.ErrInterrupted):
			fmt.Printf("interrupted at step %d (no -checkpoint set; progress lost)\n", c.Done())
		case runErr != nil:
			fmt.Fprintln(os.Stderr, runErr)
			os.Exit(1)
		}
		for _, w := range c.Workers() {
			stats = append(stats, w.Stats())
		}
		campaign = c
		fmt.Printf("campaign: %d streams on %d workers, %d epochs, shared coverage: %d edges\n",
			c.Config().Streams, c.Config().Workers, c.Epoch(), c.CoverageSnapshot().Count())
		if inj != nil {
			f := inj.Faults()
			fmt.Printf("chaos summary: %d worker panics injected, %d checkpoint writes torn, %d failed — all recovered\n",
				f.StreamPanics, f.TornWrites, f.FailedWrites)
		}
		if poisoned := c.Poisoned(); len(poisoned) > 0 {
			var ss []int
			for s := range poisoned {
				ss = append(ss, s)
			}
			sort.Ints(ss)
			for _, s := range ss {
				fmt.Printf("stream %d poisoned at epoch %d: %s\n",
					s, poisoned[s].Epoch, poisoned[s].Reason)
			}
		}
	} else {
		f := fuzz.NewMuCFuzz("muCFuzz."+*set, comp, mutators, pool,
			rand.New(rand.NewSource(*seed)))
		f.StaticFilter = !*noStatic
		if s, serr := sched.New(*schedKind, len(mutators)); serr == nil {
			f.Sched = s
		}
		f.Stats().Instrument(reg)
		f.InstrumentSched(reg)
		if rec != nil {
			f.AttachFlight(rec.Stream(0))
		}
		// The single-stream fuzzer has no engine barriers; give the
		// recorder pseudo-epochs every microEpochTicks compilations so
		// the console and watchdogs still see periodic summaries.
		const microEpochTicks = 256
		nextEpoch := microEpochTicks
		epoch := 0
		next := cli.StatsInterval
		for f.Stats().Ticks < *steps {
			f.Step()
			if rec != nil && f.Stats().Ticks >= nextEpoch {
				epoch++
				rec.EndEpoch(microEpoch(epoch, f, *steps))
				for nextEpoch <= f.Stats().Ticks {
					nextEpoch += microEpochTicks
				}
			}
			if cli.StatsInterval > 0 && f.Stats().Ticks >= next {
				st := f.Stats()
				fmt.Println("[stats] " + status.Line(st.Ticks, *steps,
					st.Coverage.Count(), st.UniqueCrashes(), st.CompilableRatio()))
				next += cli.StatsInterval
			}
		}
		if rec != nil {
			epoch++
			rec.EndEpoch(microEpoch(epoch, f, *steps))
			st := f.Stats()
			rec.End(st.Ticks, st.Coverage.Count(), st.UniqueCrashes())
		}
		stats = append(stats, f.Stats())
		fmt.Printf("pool grew to %d programs\n", f.PoolSize())
	}
	sp.End()

	sp = reg.Span("report")
	agg := fuzz.NewStats("all")
	for _, st := range stats {
		agg.MergeFrom(st)
	}
	crashes := agg.Crashes
	fmt.Printf("target: %s-%d   mutants: %d   compilable: %.1f%%   edges: %d\n",
		*compiler, version, agg.Total, agg.CompilableRatio(),
		agg.Coverage.Count())
	if agg.StaticRejects > 0 {
		fmt.Printf("static filter: %d mutants rejected before compilation (%d ticks saved)\n",
			agg.StaticRejects, agg.StaticRejects)
	}
	fmt.Printf("unique crashes: %d\n", len(crashes))
	if campaign != nil {
		// Macro campaigns get the full triage pipeline: signature
		// bucketing across streams, deep-component-first ranking, and
		// (with -reduce) automatic witness minimization.
		rep := campaign.Triage(comp, engine.TriageConfig{
			Reduce:   *doReduce,
			Registry: reg,
		})
		fmt.Print(rep.Render())
		if *triageOut != "" {
			if err := rep.WriteJSON(*triageOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("triage report written to %s\n", *triageOut)
		}
	} else {
		var sigs []string
		for sig := range crashes {
			sigs = append(sigs, sig)
		}
		// Deterministic report order: discovery tick, then signature, so
		// equal-seed runs print identical reports even when several
		// crashes share a tick.
		sort.Slice(sigs, func(i, j int) bool {
			ci, cj := crashes[sigs[i]], crashes[sigs[j]]
			if ci.FirstTick != cj.FirstTick {
				return ci.FirstTick < cj.FirstTick
			}
			return sigs[i] < sigs[j]
		})
		for _, sig := range sigs {
			c := crashes[sig]
			fmt.Printf("  t=%-7d [%s/%s] %s\n     via %s\n     frames: %s | %s\n",
				c.FirstTick, c.Report.Component, c.Report.Kind, c.Report.Message,
				c.Via, c.Report.Frames[0], c.Report.Frames[1])
			if *doReduce {
				oracle := reduce.CrashOracle(comp, compilersim.DefaultOptions(), sig)
				res := reduce.Reduce(c.Input, oracle, reduce.DefaultConfig())
				fmt.Printf("     reduced input (%d -> %d bytes):\n", len(c.Input), len(res.Output))
				for _, line := range strings.Split(strings.TrimSpace(res.Output), "\n") {
					fmt.Printf("       %s\n", line)
				}
			}
		}
	}
	sp.End()

	if rec != nil {
		if n := len(rec.Anomalies()); n > 0 {
			fmt.Printf("flight watchdogs raised %d anomalies (see journal or -flight-report)\n", n)
		}
		if jerr := rec.JournalErr(); jerr != nil {
			fmt.Fprintf(os.Stderr, "flight journal error: %v\n", jerr)
		}
		if *flightRep {
			frep := flight.BuildReport(rec.Events())
			fmt.Print(frep.Render())
			fmt.Print(flight.RenderLatency(reg.Snapshot()))
		}
		if flightW != nil {
			if cerr := flightW.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, cerr)
			}
			fmt.Printf("flight journal written to %s\n", *flightOut)
		}
	}

	if err := shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// submitJob delegates a campaign to a running daemon: submit, watch
// until terminal, print the triage report.
func submitJob(addr string, spec serve.JobSpec) error {
	// Reads retry transient connection errors (bounded seeded backoff)
	// so a daemon restart mid-watch does not abort the delegation.
	c := &serve.Client{Addr: addr, Retry: &resil.Policy{MaxAttempts: 8}}
	id, err := c.Submit(spec)
	if err != nil {
		return err
	}
	fmt.Printf("submitted to %s as %s (tenant %s)\n", addr, id, spec.Tenant)
	lastDone := -1
	rec, err := c.Wait(id, 500*time.Millisecond, 0, func(r serve.JobRecord) {
		if r.Done == lastDone {
			return
		}
		lastDone = r.Done
		fmt.Printf("job %s [%s] %d/%d steps   %d edges   %d crashes\n",
			r.ID, r.State, r.Done, r.Spec.Steps, r.Edges, r.Crashes)
	})
	if err != nil {
		return err
	}
	switch rec.State {
	case serve.Failed:
		return fmt.Errorf("job %s failed: %s", id, rec.Error)
	case serve.Quarantined:
		return fmt.Errorf("job %s quarantined: %s", id, rec.Error)
	}
	data, err := c.Results(id)
	if err != nil {
		return err
	}
	os.Stdout.Write(data)
	return nil
}

// microEpoch summarizes the single-stream fuzzer's progress as one
// pseudo-barrier for the flight recorder.
func microEpoch(epoch int, f *fuzz.MuCFuzz, total int) flight.EpochInfo {
	st := f.Stats()
	return flight.EpochInfo{
		Epoch: epoch, Done: st.Ticks, Total: total, Edges: st.Coverage.Count(),
		Streams: []flight.StreamInfo{{
			Stream: 0, Ticks: st.Ticks, Total: st.Total,
			Crashes: len(st.Crashes), Edges: st.Coverage.Count(),
			Pool: f.PoolSize(), Sched: f.SchedState(),
		}},
	}
}

// runLint is the standalone shift-left report: it semantically analyzes
// the seed corpus (which must be clean) and one sampled mutant per
// mutator, tallying diagnostics per check.
func runLint(pool []string, mutators []*muast.Mutator, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	perCheck := map[string]int{}
	tally := func(src string) (errs int) {
		for _, d := range mutcheck.Analyze(src) {
			perCheck[d.Check]++
			if d.Severity == mutcheck.Error {
				errs++
			}
		}
		return errs
	}
	seedErrs := 0
	for _, s := range pool {
		seedErrs += tally(s)
	}
	fmt.Printf("seed corpus: %d programs, %d front-end errors (want 0)\n",
		len(pool), seedErrs)

	sampled, rejected := 0, 0
	for _, mu := range mutators {
		p := pool[rng.Intn(len(pool))]
		mgr, err := muast.NewManager(p, rng)
		if err != nil {
			continue
		}
		mutant, ok := mu.Apply(p, mgr)
		if !ok {
			continue
		}
		sampled++
		if tally(mutant) > 0 {
			rejected++
			fmt.Printf("  %-36s would be statically rejected\n", mu.Name)
		}
	}
	fmt.Printf("sampled %d mutants (one per applicable mutator): %d statically rejected\n",
		sampled, rejected)
	var checks []string
	for c := range perCheck {
		checks = append(checks, c)
	}
	sort.Strings(checks)
	for _, c := range checks {
		fmt.Printf("  %-24s %d\n", c, perCheck[c])
	}
}
