// Command experiments regenerates the paper's tables and figures on the
// simulated substrate. Run with -run to select one experiment:
//
//	experiments -run all
//	experiments -run table1,table2,table3
//	experiments -run rq1            # figures 7-9 + table 4
//	experiments -run table5
//	experiments -run table6
//	experiments -run mutators       # section 4.1 registry stats
//	experiments -run schedbench     # scheduling/cache ablation -> BENCH_sched.json
//	experiments -run hotloopbench   # batched hot-loop bench -> BENCH_hotloop.json
//	experiments -run coverbench     # shared-coverage merge pair -> BENCH_cover.json
//	experiments -run benchgate      # compare fresh benches vs committed BENCH files
//	experiments -run flightreport -flight-journal flight.jsonl
//
// The -steps / -invocations / -macrosteps flags scale the campaigns.
// -sched switches the μCFuzz/macro campaigns between the legacy
// uniform shuffle (default) and the adaptive UCB bandit; schedbench
// runs both, with the mutant cache off and on, and writes the result
// to -out (default BENCH_sched.json). hotloopbench times the same
// campaign with reward batching off and on (-hotloop-out), coverbench
// times the shared-coverage locking pair (-cover-out), and benchgate
// re-runs the campaign benches and exits nonzero if throughput
// regresses >10% vs the committed BENCH files or determinism breaks
// (see docs/PERFORMANCE.md).
//
// The table6 campaign runs on the parallel engine: -workers sets the
// goroutine count (results are identical at any value), -checkpoint DIR
// snapshots each compiler's campaign there — rerunning with the same
// directory resumes instead of restarting, and SIGINT/SIGTERM checkpoint
// before exiting — and -triage-out DIR writes the ranked per-compiler
// triage reports as JSON (-triage-reduce also minimizes each witness).
//
// Observability: -metrics-out/-trace-out write a final JSON metrics
// snapshot and a JSONL span journal (one span per experiment);
// -debug-addr serves /debug/metrics and /debug/pprof while running.
//
// flightreport is the post-campaign reporter: it replays a flight
// journal written by `mucfuzz -flight` into a human-readable report
// (timeline, top mutators by reward, crash log, anomaly log);
// -flight-metrics additionally joins a metrics snapshot's stage-latency
// table into the report.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"github.com/icsnju/metamut-go/internal/engine"
	"github.com/icsnju/metamut-go/internal/experiments"
	"github.com/icsnju/metamut-go/internal/flight"
	"github.com/icsnju/metamut-go/internal/obs"
)

func main() {
	var (
		run         = flag.String("run", "all", "comma-separated experiments: table1,table2,table3,rq1,table5,table6,mutators,schedbench,hotloopbench,coverbench,benchgate,flightreport,all")
		seed        = flag.Int64("seed", 20240427, "random seed")
		steps       = flag.Int("steps", 4000, "RQ1 compilations per fuzzer per compiler")
		table5Steps = flag.Int("table5steps", 800, "compilations per Table 5 repetition")
		table5Reps  = flag.Int("table5reps", 10, "Table 5 repetitions")
		invocations = flag.Int("invocations", 100, "unsupervised MetaMut invocations")
		macroSteps  = flag.Int("macrosteps", 24000, "macro-fuzzer compilations per compiler")
		seedProgs   = flag.Int("seeds", 120, "seed corpus size")
		workers     = flag.Int("workers", 0, "table6: goroutines executing the campaign streams (0 = GOMAXPROCS; does not change results)")
		ckptDir     = flag.String("checkpoint", "", "table6: directory for per-compiler campaign snapshots (existing ones are resumed)")
		triageOut   = flag.String("triage-out", "", "table6: directory for per-compiler triage reports (JSON)")
		triageRed   = flag.Bool("triage-reduce", false, "table6: minimize each triaged witness (slower)")
		schedKind   = flag.String("sched", "", "mutator scheduling for rq1/table5/table6: uniform (default) or adaptive")
		benchSteps  = flag.Int("schedbench-steps", 6000, "schedbench/hotloopbench/benchgate: compilations per bench variant")
		benchOut    = flag.String("out", "BENCH_sched.json", "schedbench: where to write the JSON result")
		hotloopOut  = flag.String("hotloop-out", "BENCH_hotloop.json", "hotloopbench: where to write the JSON result")
		coverOut    = flag.String("cover-out", "BENCH_cover.json", "coverbench: where to write the JSON result")
		benchDir    = flag.String("bench-dir", ".", "benchgate: directory holding the committed BENCH_*.json files")
		flightIn    = flag.String("flight-journal", "", "flightreport: flight journal (JSONL) to replay")
		flightMet   = flag.String("flight-metrics", "", "flightreport: metrics snapshot JSON to join stage latency from")
	)
	cli := obs.BindCLIFlags()
	flag.Parse()
	switch *schedKind {
	case "", "uniform", "adaptive":
	default:
		fmt.Fprintf(os.Stderr, "unknown -sched policy %q (want uniform or adaptive)\n", *schedKind)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	shutdown, err := cli.Activate(reg, "experiments")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := experiments.DefaultConfig()
	cfg.Obs = reg
	cfg.Seed = *seed
	cfg.StepsPerFuzzer = *steps
	cfg.Table5Steps = *table5Steps
	cfg.Table5Reps = *table5Reps
	cfg.Invocations = *invocations
	cfg.MacroSteps = *macroSteps
	cfg.SeedPrograms = *seedProgs
	cfg.EngineWorkers = *workers
	cfg.CheckpointDir = *ckptDir
	cfg.TriageReduce = *triageRed
	cfg.Sched = *schedKind
	cfg.SchedBenchSteps = *benchSteps

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	ran := false

	if all || want["mutators"] {
		fmt.Println(experiments.MutatorOverview())
		ran = true
	}
	if all || want["table1"] || want["table2"] || want["table3"] {
		sp := reg.Span("campaign")
		st := experiments.RunCampaign(cfg)
		sp.End()
		if all || want["table1"] {
			fmt.Println(experiments.Table1(st))
		}
		if all || want["table2"] {
			fmt.Println(experiments.Table2(st))
		}
		if all || want["table3"] {
			fmt.Println(experiments.Table3(st))
		}
		ran = true
	}
	if all || want["rq1"] {
		sp := reg.Span("rq1")
		r := experiments.RunRQ1(cfg)
		sp.End()
		fmt.Println(experiments.Figure7(r))
		fmt.Println(experiments.Figure8(r))
		fmt.Println(experiments.Figure9(r))
		fmt.Println(experiments.Table4(r))
		ran = true
	}
	if all || want["table5"] {
		sp := reg.Span("table5")
		rows := experiments.RunTable5(cfg)
		sp.End()
		fmt.Println(experiments.Table5(rows))
		ran = true
	}
	if all || want["table6"] {
		if cfg.CheckpointDir != "" {
			if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		cfg.Ctx = ctx
		sp := reg.Span("table6")
		r := experiments.RunTable6(cfg)
		sp.End()
		stopSignals()
		if errors.Is(r.Err, engine.ErrInterrupted) && cfg.CheckpointDir != "" {
			fmt.Printf("table6 interrupted; campaign snapshots in %s — rerun with the same -checkpoint to resume\n",
				cfg.CheckpointDir)
		} else if r.Err != nil {
			fmt.Fprintln(os.Stderr, r.Err)
			os.Exit(1)
		} else {
			fmt.Println(experiments.Table6(r))
			if *triageOut != "" {
				if err := os.MkdirAll(*triageOut, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				for _, rep := range r.Triage {
					path := filepath.Join(*triageOut, "triage-"+rep.Compiler+".json")
					if err := rep.WriteJSON(path); err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					fmt.Printf("triage report written to %s\n", path)
				}
			}
		}
		ran = true
	}
	if want["schedbench"] {
		// Deliberately not part of -run all: it is a performance ablation,
		// not a paper table, and BENCH_sched.json is its committed record.
		sp := reg.Span("schedbench")
		r := experiments.RunSchedBench(cfg)
		sp.End()
		fmt.Println(r.Render())
		if *benchOut != "" {
			if err := r.WriteJSON(*benchOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("ablation written to %s\n", *benchOut)
		}
		ran = true
	}
	if want["hotloopbench"] {
		// Like schedbench: a performance record, not a paper table, so
		// not part of -run all. BENCH_hotloop.json is its committed record.
		sp := reg.Span("hotloopbench")
		r := experiments.RunHotLoopBench(cfg)
		sp.End()
		fmt.Println(r.Render())
		if *hotloopOut != "" {
			if err := r.WriteJSON(*hotloopOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("hot-loop bench written to %s\n", *hotloopOut)
		}
		ran = true
	}
	if want["coverbench"] {
		sp := reg.Span("coverbench")
		r := experiments.RunCoverBench()
		sp.End()
		fmt.Println(r.Render())
		if *coverOut != "" {
			if err := r.WriteJSON(*coverOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("cover bench written to %s\n", *coverOut)
		}
		ran = true
	}
	if want["benchgate"] {
		// The CI-facing perf gate: reruns the campaign benches and
		// compares them to the committed BENCH files (make bench-gate).
		sp := reg.Span("benchgate")
		fails := experiments.RunBenchGate(cfg, *benchDir)
		sp.End()
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "bench-gate FAIL %s: want %s, got %s\n", f.Check, f.Want, f.Got)
			}
			os.Exit(1)
		}
		fmt.Println("bench-gate ok: throughput within 10% of committed BENCH files, determinism intact")
		ran = true
	}
	if want["flightreport"] {
		// Not part of -run all: it replays an existing journal rather
		// than running a campaign.
		if *flightIn == "" {
			fmt.Fprintln(os.Stderr, "flightreport needs -flight-journal FILE")
			os.Exit(2)
		}
		jf, ferr := os.Open(*flightIn)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		events, rerr := flight.ReadJournal(jf)
		jf.Close()
		if rerr != nil {
			fmt.Fprintln(os.Stderr, rerr)
			os.Exit(1)
		}
		fmt.Print(flight.BuildReport(events).Render())
		if *flightMet != "" {
			data, merr := os.ReadFile(*flightMet)
			if merr != nil {
				fmt.Fprintln(os.Stderr, merr)
				os.Exit(1)
			}
			var snap obs.Snapshot
			if jerr := json.Unmarshal(data, &snap); jerr != nil {
				fmt.Fprintf(os.Stderr, "parse metrics snapshot %s: %v\n", *flightMet, jerr)
				os.Exit(1)
			}
			fmt.Print(flight.RenderLatency(&snap))
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
	if err := shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
