// Command mucfuzzd is the fuzzing-as-a-service daemon: a multi-tenant
// campaign coordinator exposing the internal/serve HTTP API.
//
//	mucfuzzd -state /var/lib/mucfuzz -addr :8377
//
// Jobs (seed corpus parameters, compiler profile, mutator arsenal,
// step budget, tenant) are submitted over HTTP/JSON — see mucfuzzctl
// or `mucfuzz -submit`. Concurrent campaigns multiplex over one shared
// worker fleet (-fleet) with per-tenant deficit-round-robin fairness
// and quota enforcement (-max-active-jobs, -max-tenant-steps). All
// state persists under -state: kill the daemon at any instant —
// SIGKILL included — and on restart every running job resumes from its
// last checkpoint with byte-identical eventual results.
//
//	mucfuzzd -state ./svc -fleet 8 -max-active-jobs 4 -debug-addr :6060
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/resil"
	"github.com/icsnju/metamut-go/internal/resil/chaos"
	"github.com/icsnju/metamut-go/internal/serve"
	"github.com/icsnju/metamut-go/internal/serve/heal"
)

func main() {
	var (
		addr     = flag.String("addr", ":8377", "HTTP API listen address")
		state    = flag.String("state", "", "state directory: ledger + per-job checkpoints/journals (required)")
		fleet    = flag.Int("fleet", 0, "shared worker goroutines per slice (0 = GOMAXPROCS; never changes results)")
		sliceEp  = flag.Int("slice-epochs", 1, "epochs a job runs before the fleet may switch jobs")
		quantum  = flag.Int("quantum", 0, "fair-scheduler step credit per tenant visit (0 = default)")
		maxJobs  = flag.Int("max-active-jobs", 0, "per-tenant concurrent (non-terminal) job quota (0 = unlimited)")
		maxSteps = flag.Int("max-tenant-steps", 0, "per-tenant lifetime submitted-step quota (0 = unlimited)")

		strikeLimit = flag.Int("strike-limit", 0, "faulty slices before a job is quarantined (0 = default 3)")
		highWater   = flag.Int("high-water-jobs", 0, "live-job count that sheds new admissions and pauses low-deficit tenants (0 = off)")
		tenantFloor = flag.Int("tenant-floor", 0, "tenants kept runnable under overload pausing (0 = default 1)")
		retryAfter  = flag.Int("retry-after", 0, "Retry-After hint in seconds on shed admissions (0 = default 30)")
		anomStrikes = flag.String("anomaly-strikes", "", "comma-separated flight watchdog kinds that strike the job they fire in")

		chaosSeed       = flag.Int64("chaos-seed", 0, "chaos fault-site seed")
		chaosSlicePanic = flag.Int("chaos-slice-panic", 0, "inject a panic into ~1/N slice attempts (0 = off)")
		chaosPoisonSeq  = flag.Int("chaos-poison-seq", 0, "designate job seq N as poison: every slice after its first panics (0 = off)")
		chaosENOSPC     = flag.Int("chaos-ckpt-enospc", 0, "fail every Nth checkpoint write attempt with ENOSPC (0 = off)")
		chaosLedgerTear = flag.Int("chaos-ledger-tear", 0, "tear every Nth ledger save (0 = off; keep >= 2)")
	)
	cli := obs.BindCLIFlags()
	flag.Parse()
	if *state == "" {
		fmt.Fprintln(os.Stderr, "mucfuzzd: -state is required")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	serve.RegisterMetrics(reg)
	resil.RegisterMetrics(reg)

	hcfg := heal.Config{
		StrikeLimit:       *strikeLimit,
		HighWaterJobs:     *highWater,
		TenantFloor:       *tenantFloor,
		RetryAfterSeconds: *retryAfter,
	}
	if *anomStrikes != "" {
		for _, kind := range strings.Split(*anomStrikes, ",") {
			if kind = strings.TrimSpace(kind); kind != "" {
				hcfg.AnomalyStrikes = append(hcfg.AnomalyStrikes, kind)
			}
		}
	}
	var hooks *serve.ChaosHooks
	if *chaosSlicePanic > 0 || *chaosPoisonSeq > 0 || *chaosENOSPC > 0 || *chaosLedgerTear > 0 {
		inj := chaos.NewServeInjector(chaos.ServeConfig{
			Seed:                  *chaosSeed,
			SlicePanicEvery:       *chaosSlicePanic,
			PoisonJobSeq:          *chaosPoisonSeq,
			CheckpointENOSPCEvery: *chaosENOSPC,
			LedgerTearEvery:       *chaosLedgerTear,
		})
		hooks = &serve.ChaosHooks{
			SliceStart:          inj.SliceStart,
			CheckpointTransform: inj.CheckpointTransform,
			LedgerTransform:     inj.LedgerTransform,
		}
		fmt.Fprintln(os.Stderr, "mucfuzzd: CHAOS HOOKS ARMED — fault injection active")
	}

	d, err := serve.New(serve.Config{
		StateDir:    *state,
		Fleet:       *fleet,
		SliceEpochs: *sliceEp,
		Quantum:     *quantum,
		Quotas:      serve.Quotas{MaxActiveJobs: *maxJobs, MaxTotalSteps: *maxSteps},
		Registry:    reg,
		Heal:        hcfg,
		Chaos:       hooks,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	shutdown, err := cli.Activate(reg, "mucfuzzd")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: d.Handler()}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				fmt.Fprintf(os.Stderr, "mucfuzzd: http server panicked: %v\n", r)
			}
		}()
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, serr)
		}
	}()
	fmt.Printf("mucfuzzd: serving on %s, state in %s\n", ln.Addr(), *state)

	// The coordinator runs on the main goroutine until a signal asks for
	// a graceful stop: the in-flight slice checkpoints at its barrier,
	// the ledger is saved, and every job resumes on the next boot.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				fmt.Fprintf(os.Stderr, "mucfuzzd: signal watcher panicked: %v\n", r)
			}
		}()
		<-ctx.Done()
		fmt.Println("mucfuzzd: signal received; stopping at the next barrier")
		d.Stop()
	}()
	d.Run()
	stopSignals()

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(sctx)
	if err := shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	fmt.Println("mucfuzzd: stopped; all jobs parked at their barriers")
}
