// Command detlint runs the repo's invariant-lint suite (package
// internal/detlint): five analyzers proving determinism and
// supervision discipline — sorted map iteration at serialization
// sinks, no wall-clock reads in deterministic packages, stream-RNG-
// only randomness, supervised campaign goroutines, documented
// constant metric names — over the packages matching the given
// patterns (default ./...).
//
// Exit status: 0 when clean, 1 when any diagnostic survives
// suppression, 2 on usage or load errors. Suppress a finding with
// `//detlint:allow <analyzer> <reason>`; the reason is mandatory.
//
// Usage:
//
//	detlint [-run maporder,wallclock,...] [-list] [-json]
//	        [-metrics-doc path] [packages...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/icsnju/metamut-go/internal/detlint"
)

func main() {
	var (
		runNames   = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list       = flag.Bool("list", false, "list analyzers and exit")
		asJSON     = flag.Bool("json", false, "emit diagnostics as a JSON array")
		metricsDoc = flag.String("metrics-doc", "", "metrics catalogue path (default: <module>/docs/METRICS.md)")
	)
	flag.Parse()

	all := detlint.Suite(nil)
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := detlint.ModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	docPath := *metricsDoc
	if docPath == "" {
		docPath = filepath.Join(root, "docs", "METRICS.md")
	}
	documented, err := detlint.ParseMetricsDoc(docPath)
	if err != nil {
		fatal(err)
	}
	analyzers := detlint.Suite(documented)
	if *runNames != "" {
		analyzers, err = detlint.Select(analyzers, strings.Split(*runNames, ","))
		if err != nil {
			fatal(err)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := detlint.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}

	diags := detlint.Run(pkgs, analyzers)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = relPath(cwd, d.Pos.Filename)
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// relPath shortens filename relative to the working directory when
// that makes it shorter; diagnostics stay clickable either way.
func relPath(cwd, filename string) string {
	if rel, err := filepath.Rel(cwd, filename); err == nil && len(rel) < len(filename) {
		return rel
	}
	return filename
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
