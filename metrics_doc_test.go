package metamut

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/core"
	"github.com/icsnju/metamut-go/internal/engine"
	"github.com/icsnju/metamut-go/internal/flight"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/llm"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/resil"
	"github.com/icsnju/metamut-go/internal/sched"
	"github.com/icsnju/metamut-go/internal/seeds"
	"github.com/icsnju/metamut-go/internal/serve"
)

// metricsDocRow matches the first two columns of a catalogue row:
// | `name{label,label}` | kind | ...
var metricsDocRow = regexp.MustCompile(
	"^\\| `([a-z_]+)(?:\\{([a-z_,]+)\\})?` \\| (counter|gauge|histogram) \\|")

// docFamilies parses docs/METRICS.md into "name kind {labels}" keys.
func docFamilies(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile("docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		m := metricsDocRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		out[fmt.Sprintf("%s %s {%s}", m[1], m[3], m[2])] = true
	}
	return out
}

// liveFamilies builds a registry and exercises every instrumentation
// entry point the repo has, then renders Families() the same way.
func liveFamilies(t *testing.T) map[string]bool {
	t.Helper()
	reg := obs.NewRegistry()

	// Event-gated families are pre-registered by their packages'
	// helpers — the same calls the CLIs make.
	core.RegisterMetrics(reg)
	llm.RegisterMetrics(reg)
	resil.RegisterMetrics(reg)
	sched.RegisterMetrics(reg)
	flight.RegisterMetrics(reg)
	serve.RegisterMetrics(reg)

	comp := compilersim.New("gcc", 14)
	comp.Instrument(reg)
	comp.EnableMutantCache(16)

	// A miniature adaptive campaign registers the fuzz and engine
	// families exactly as cmd/mucfuzz does.
	pool := seeds.Generate(6, 1)
	factory := func(stream int, rng *rand.Rand, _ fuzz.CoverageSink) engine.Worker {
		w := fuzz.NewMuCFuzz(fmt.Sprintf("doc-%d", stream), comp, muast.All(), pool, rng)
		w.Sched = sched.NewAdaptive(len(muast.All()), sched.DefaultConfig())
		w.Stats().Instrument(reg)
		w.InstrumentSched(reg)
		return w
	}
	c := engine.New(engine.Config{Streams: 2, Workers: 1, StepsPerEpoch: 4,
		TotalSteps: 16, Seed: 1, Registry: reg}, factory)
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Triage(comp, engine.TriageConfig{Registry: reg})

	reg.Span("doc-test").End() // span_seconds

	out := map[string]bool{}
	for _, f := range reg.Families() {
		out[fmt.Sprintf("%s %s {%s}", f.Name, f.Kind, strings.Join(f.Labels, ","))] = true
	}
	return out
}

// TestCampaignSchemaPreRegistered enforces satellite #1 of the flight
// recorder work: every campaign-side family (engine_*, sched_*,
// resil_*, fuzz's virtual clock, flight_*) must appear in a registry
// snapshot after only the RegisterMetrics calls a CLI makes at startup
// — before any campaign event has fired. A dashboard attached to a
// quiet campaign sees the full schema, not a trickle of families
// appearing as events happen to occur.
func TestCampaignSchemaPreRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	fuzz.RegisterMetrics(reg)
	engine.RegisterMetrics(reg)
	sched.RegisterMetrics(reg)
	resil.RegisterMetrics(reg)
	flight.RegisterMetrics(reg)
	serve.RegisterMetrics(reg)

	have := map[string]bool{}
	for _, f := range reg.Families() {
		have[f.Name] = true
	}
	for name := range docFamilies(t) {
		fam := strings.SplitN(name, " ", 2)[0]
		switch {
		case strings.HasPrefix(fam, "engine_"),
			strings.HasPrefix(fam, "sched_"),
			strings.HasPrefix(fam, "resil_"),
			strings.HasPrefix(fam, "flight_"),
			strings.HasPrefix(fam, "serve_"),
			fam == "triage_reduced_total":
			if !have[fam] {
				t.Errorf("campaign family %s not pre-registered at startup", fam)
			}
		}
	}
	if !have["compile_ticks"] || !have["crashes_unique_total"] {
		t.Error("fuzz.RegisterMetrics missing core fuzzer families")
	}
}

// TestMetricsDocMatchesRegistry enforces docs/METRICS.md: the catalogue
// and the live registry must agree family-for-family, including kind
// and label names, in both directions.
func TestMetricsDocMatchesRegistry(t *testing.T) {
	doc := docFamilies(t)
	if len(doc) == 0 {
		t.Fatal("parsed no rows from docs/METRICS.md — row format drifted?")
	}
	live := liveFamilies(t)

	var missing, stale []string
	for k := range live {
		if !doc[k] {
			missing = append(missing, k)
		}
	}
	for k := range doc {
		if !live[k] {
			stale = append(stale, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	for _, k := range missing {
		t.Errorf("registered but undocumented in docs/METRICS.md: %s", k)
	}
	for _, k := range stale {
		t.Errorf("documented in docs/METRICS.md but never registered: %s", k)
	}
}
