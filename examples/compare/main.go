// Compare: a miniature RQ1 — race μCFuzz against the four baselines on
// the same simulated compiler and print the coverage/crash/compilable
// comparison the paper's Figures 7-8 and Table 5 report.
//
//	go run ./examples/compare
package main

import (
	"fmt"

	"github.com/icsnju/metamut-go/internal/experiments"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.StepsPerFuzzer = 2500
	cfg.SeedPrograms = 80
	cfg.CoverageSamples = 8

	fmt.Println("Racing 6 fuzzers on gcc-14 and clang-18",
		fmt.Sprintf("(%d compilations each)...", cfg.StepsPerFuzzer))
	r := experiments.RunRQ1(cfg)

	fmt.Printf("\n%-10s %-7s %10s %9s %12s\n",
		"fuzzer", "target", "edges", "crashes", "compilable%")
	for _, run := range r.Runs {
		fmt.Printf("%-10s %-7s %10d %9d %12.1f\n",
			run.Fuzzer, run.Compiler, run.Stats.Coverage.Count(),
			run.Stats.UniqueCrashes(), run.Stats.CompilableRatio())
	}
	fmt.Println()
	fmt.Println(experiments.Figure8(r))
	fmt.Println(experiments.Table4(r))
}
