// Reduce: fuzz until a crash appears, then minimize the crashing input
// while preserving its top-2-frame signature — the triage step behind
// every minimized test case in the paper's bug reports (Section 5.3).
//
//	go run ./examples/reduce
package main

import (
	"fmt"
	"math/rand"

	metamut "github.com/icsnju/metamut-go"
	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/reduce"
)

func main() {
	comp := metamut.NewCompiler("gcc", 14)
	f := metamut.NewMuCFuzz("hunter", comp, metamut.Mutators(),
		metamut.SeedCorpus(80, 7), rand.New(rand.NewSource(5)))

	fmt.Println("Fuzzing until a deep (post-front-end) crash appears...")
	var found *struct {
		input string
		sig   string
		msg   string
	}
	for f.Stats().Ticks < 20000 && found == nil {
		f.Step()
		for _, c := range f.Stats().Crashes {
			if c.Report.Component != compilersim.FrontEnd {
				found = &struct {
					input string
					sig   string
					msg   string
				}{c.Input, c.Report.Signature(), c.Report.Message}
				break
			}
		}
	}
	if found == nil {
		fmt.Println("no deep crash within the budget; try another seed")
		return
	}
	fmt.Printf("\ncrash: %s\nsignature: %s\ninput: %d bytes\n\n",
		found.msg, found.sig, len(found.input))

	oracle := reduce.CrashOracle(comp, compilersim.DefaultOptions(), found.sig)
	res := reduce.Reduce(found.input, oracle, reduce.DefaultConfig())
	fmt.Printf("reduced to %d bytes (%.0f%%) in %d passes, %d oracle calls:\n\n%s\n",
		len(res.Output), 100*res.Ratio(found.input), res.Passes, res.Tried,
		res.Output)
}
