// Bughunt: run μCFuzz with the supervised mutator set against both
// simulated compilers until it uncovers deep (post-front-end) crashes —
// the RQ2 workflow in miniature.
//
//	go run ./examples/bughunt
package main

import (
	"fmt"
	"math/rand"

	metamut "github.com/icsnju/metamut-go"
)

func main() {
	pool := metamut.SeedCorpus(80, 7)
	for _, target := range []struct {
		name    string
		version int
	}{{"gcc", 14}, {"clang", 18}} {
		comp := metamut.NewCompiler(target.name, target.version)
		f := metamut.NewMuCFuzz("hunter", comp,
			metamut.MutatorsBySet(metamut.Supervised), pool,
			rand.New(rand.NewSource(11)))

		const budget = 6000
		for f.Stats().Ticks < budget {
			f.Step()
		}
		st := f.Stats()
		fmt.Printf("=== %s-%d: %d mutants, %.1f%% compilable, %d edges, %d unique crashes\n",
			target.name, target.version, st.Total, st.CompilableRatio(),
			st.Coverage.Count(), st.UniqueCrashes())
		for _, tl := range st.CrashTimeline() {
			_ = tl
		}
		for sig, c := range st.Crashes {
			fmt.Printf("  [%s/%s] found at t=%d via %s\n    %s\n    sig: %s\n",
				c.Report.Component, c.Report.Kind, c.FirstTick, c.Via,
				c.Report.Message, sig)
		}
		fmt.Println()
	}
}
