// Invent: drive the MetaMut pipeline end to end — invention, template
// synthesis, and the validation-refinement loop — and show what the LLM
// produced, what broke, and what the loop repaired.
//
//	go run ./examples/invent
package main

import (
	"fmt"

	metamut "github.com/icsnju/metamut-go"
	"github.com/icsnju/metamut-go/internal/core"
)

func main() {
	client := metamut.NewSimulatedLLM(2024)
	fw := metamut.NewFramework(client, 7)

	fmt.Println("Running 12 MetaMut invocations (invention -> synthesis -> refinement):")
	var prior []string
	valid := 0
	for i := 0; i < 12; i++ {
		res := fw.GenerateOne(prior)
		name := "<api error>"
		if res.Program != nil {
			name = res.Program.Name
		}
		fmt.Printf("\n#%02d  %s\n", i+1, name)
		if res.Program != nil {
			fmt.Printf("     %q\n", res.Invention.Description)
		}
		fmt.Printf("     outcome: %-26s tokens: %-6d QA rounds: %-2d cost: $%.2f\n",
			res.Outcome, res.Cost.TotalTokens(), res.Cost.TotalQA(),
			res.Cost.DollarCost())
		if len(res.FixedByGoal) > 0 {
			fmt.Printf("     refinement fixed:")
			for g := core.GoalCompiles; g <= core.GoalValidMutants; g++ {
				if n := res.FixedByGoal[g]; n > 0 {
					fmt.Printf(" goal#%d x%d", int(g), n)
				}
			}
			fmt.Println()
		}
		if res.Outcome == core.Valid {
			valid++
			prior = append(prior, res.Program.Name)
			fmt.Printf("     synthesized implementation:\n")
			for _, line := range splitLines(res.Program.Render()) {
				fmt.Printf("       %s\n", line)
			}
		}
	}
	fmt.Printf("\n%d/12 invocations yielded valid mutators\n", valid)
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
