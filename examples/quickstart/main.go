// Quickstart: apply semantic-aware mutators to a C program and compile
// the mutants against the simulated compiler.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	metamut "github.com/icsnju/metamut-go"
)

const program = `
int total(int n) {
    int i;
    int sum = 0;
    for (i = 0; i < n; i++) {
        sum += i * i;
    }
    if (sum > 100) { sum -= 50; }
    return sum;
}
int main(void) { return total(10) & 0xff; }
`

func main() {
	fmt.Printf("registered mutators: %d (supervised %d, unsupervised %d)\n\n",
		len(metamut.Mutators()),
		len(metamut.MutatorsBySet(metamut.Supervised)),
		len(metamut.MutatorsBySet(metamut.Unsupervised)))

	comp := metamut.NewCompiler("gcc", 14)
	rng := rand.New(rand.NewSource(42))

	// Apply a handful of named mutators and compile each mutant.
	for _, name := range []string{
		"ModifyFunctionReturnTypeToVoid", // the paper's Ret2V example
		"DuplicateBranch",
		"ChangeBinaryOperator",
		"ForToWhile",
		"SwitchInitExpr",
	} {
		mutant, ok := metamut.Mutate(program, name, rng)
		if !ok {
			fmt.Printf("== %s: not applicable to this program\n\n", name)
			continue
		}
		res := comp.Compile(mutant, metamut.CompileOptions{OptLevel: 2})
		status := "compiles"
		if !res.OK {
			status = "rejected"
		}
		if res.Crash != nil {
			status = "CRASHED THE COMPILER: " + res.Crash.Message
		}
		fmt.Printf("== %s (%s)\n%s\n", name, status, mutant)
	}
}
