package metamut

import (
	"math/rand"
	"strings"
	"testing"
)

func TestPublicMutatorAccess(t *testing.T) {
	all := Mutators()
	if len(all) != 118 {
		t.Fatalf("Mutators() = %d, want 118", len(all))
	}
	if got := len(MutatorsBySet(Supervised)); got != 68 {
		t.Errorf("supervised = %d, want 68", got)
	}
	if got := len(MutatorsBySet(Unsupervised)); got != 50 {
		t.Errorf("unsupervised = %d, want 50", got)
	}
	mu, ok := LookupMutator("DuplicateBranch")
	if !ok || mu.Category != CatStatement {
		t.Errorf("DuplicateBranch lookup failed: %v %v", ok, mu)
	}
	if _, ok := LookupMutator("NoSuchMutator"); ok {
		t.Error("ghost mutator found")
	}
}

func TestPublicMutateAndCompile(t *testing.T) {
	src := `
int f(int a) { return a * 2; }
int main(void) { return f(21); }
`
	rng := rand.New(rand.NewSource(1))
	mutant, ok := Mutate(src, "ModifyFunctionReturnTypeToVoid", rng)
	if !ok {
		t.Fatal("mutation did not apply")
	}
	if !strings.Contains(mutant, "void f") {
		t.Errorf("unexpected mutant:\n%s", mutant)
	}
	comp := NewCompiler("gcc", 14)
	res := comp.Compile(mutant, CompileOptions{OptLevel: 2})
	if !res.OK && res.Crash == nil {
		t.Errorf("mutant rejected: %v", res.Diagnostics)
	}
	if _, ok := Mutate("not a C program {{{", "DuplicateBranch", rng); ok {
		t.Error("mutation applied to garbage input")
	}
	if _, ok := Mutate(src, "NoSuchMutator", rng); ok {
		t.Error("unknown mutator applied")
	}
}

func TestPublicPipeline(t *testing.T) {
	fw := NewFramework(NewSimulatedLLM(3), 4)
	results := fw.RunUnsupervised(5)
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
}

func TestPublicFuzzing(t *testing.T) {
	comp := NewCompiler("clang", 18)
	f := NewMuCFuzz("t", comp, MutatorsBySet(Supervised),
		SeedCorpus(20, 1), rand.New(rand.NewSource(2)))
	for f.Stats().Ticks < 150 {
		f.Step()
	}
	if f.Stats().Total == 0 || f.Stats().Coverage.Count() == 0 {
		t.Error("fuzzer made no progress")
	}
}

func TestSeedCorpusDeterministic(t *testing.T) {
	a, b := SeedCorpus(10, 5), SeedCorpus(10, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("seed corpus not deterministic")
		}
	}
}
