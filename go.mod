module github.com/icsnju/metamut-go

go 1.22
