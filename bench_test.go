// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Each benchmark
// runs a scaled-down campaign per iteration and reports the headline
// quantity as a custom metric; the full rendered table/figure is printed
// once (to the benchmark log) so `go test -bench=.` reproduces the
// evaluation end to end.
//
//	go test -bench=. -benchmem
package metamut_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/core"
	"github.com/icsnju/metamut-go/internal/engine"
	"github.com/icsnju/metamut-go/internal/experiments"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/llm"
	"github.com/icsnju/metamut-go/internal/muast"
	_ "github.com/icsnju/metamut-go/internal/mutators"
	"github.com/icsnju/metamut-go/internal/mutcheck"
	"github.com/icsnju/metamut-go/internal/mutdsl"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// benchConfig is the per-iteration campaign scale. Smaller than the
// cmd/experiments defaults so the whole bench suite stays tractable.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.SeedPrograms = 80
	cfg.StepsPerFuzzer = 1500
	cfg.CoverageSamples = 12
	cfg.Table5Steps = 400
	cfg.Table5Reps = 3
	cfg.Invocations = 60
	cfg.MacroWorkers = 4
	cfg.MacroSteps = 6000
	return cfg
}

var printOnce sync.Map

// logOnce prints the rendered experiment a single time per benchmark.
func logOnce(b *testing.B, key, text string) {
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		b.Log("\n" + text)
	}
}

// ---------------------------------------------------------------------
// Tables 1-3 — the MetaMut generation campaign
// ---------------------------------------------------------------------

func benchCampaign(b *testing.B, render func(*core.CampaignStats) string, key string) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		st := experiments.RunCampaign(cfg)
		if i == 0 {
			logOnce(b, key, render(st))
			b.ReportMetric(float64(st.ValidCount()), "valid-mutators")
			b.ReportMetric(float64(st.TotalFixes()), "fixes")
			b.ReportMetric(st.TokensTotal.Mean, "tokens/mutator")
		}
	}
}

func BenchmarkTable1RefinementFixes(b *testing.B) {
	benchCampaign(b, experiments.Table1, "table1")
}

func BenchmarkTable2GenerationCost(b *testing.B) {
	benchCampaign(b, experiments.Table2, "table2")
}

func BenchmarkTable3RequestResponseTime(b *testing.B) {
	benchCampaign(b, experiments.Table3, "table3")
}

// ---------------------------------------------------------------------
// Figures 7-9 and Table 4 — the RQ1 fuzzer comparison
// ---------------------------------------------------------------------

var (
	rq1Once   sync.Once
	rq1Shared *experiments.RQ1Result
)

// sharedRQ1 runs the comparison campaign once and reuses it across the
// four benchmarks that read it (the paper likewise derives Figures 7-9
// and Table 4 from the same runs).
func sharedRQ1() *experiments.RQ1Result {
	rq1Once.Do(func() { rq1Shared = experiments.RunRQ1(benchConfig()) })
	return rq1Shared
}

func BenchmarkFigure7CoverageTrends(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sharedRQ1()
		if i == 0 {
			logOnce(b, "figure7", experiments.Figure7(r))
			s := r.Runs[0].Stats // muCFuzz.s on gcc
			b.ReportMetric(float64(s.Coverage.Count()), "muCFuzz.s-edges")
		}
	}
}

func BenchmarkFigure8CrashVenn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sharedRQ1()
		if i == 0 {
			logOnce(b, "figure8", experiments.Figure8(r))
			total := 0
			for _, run := range r.Runs {
				total += run.Stats.UniqueCrashes()
			}
			b.ReportMetric(float64(total), "crash-findings")
		}
	}
}

func BenchmarkFigure9CrashTimelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sharedRQ1()
		if i == 0 {
			logOnce(b, "figure9", experiments.Figure9(r))
		}
	}
}

func BenchmarkTable4CrashComponents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sharedRQ1()
		if i == 0 {
			logOnce(b, "table4", experiments.Table4(r))
		}
	}
}

// ---------------------------------------------------------------------
// Table 5 — compilable mutants
// ---------------------------------------------------------------------

func BenchmarkTable5CompilableMutants(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable5(cfg)
		if i == 0 {
			logOnce(b, "table5", experiments.Table5(rows))
			for _, row := range rows {
				if row.Tool == "muCFuzz.s" {
					b.ReportMetric(row.Ratio, "muCFuzz.s-compilable%")
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Table 6 — the bug-hunting campaign
// ---------------------------------------------------------------------

func BenchmarkTable6BugHunting(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable6(cfg)
		if i == 0 {
			logOnce(b, "table6", experiments.Table6(r))
			b.ReportMetric(float64(len(r.Reports)), "bugs-reported")
		}
	}
}

// ---------------------------------------------------------------------
// Section 4.1 — mutator registry
// ---------------------------------------------------------------------

func BenchmarkMutatorOverview(b *testing.B) {
	for i := 0; i < b.N; i++ {
		text := experiments.MutatorOverview()
		if i == 0 {
			logOnce(b, "mutators", text)
		}
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md): each removes one design choice and reports the
// headline metric it protects.
// ---------------------------------------------------------------------

// BenchmarkAblationNoSemanticChecks removes the μAST semantic checks
// entirely (every mutation runs unchecked): the compilable-mutant ratio
// collapses toward AFL++ territory, which is Table 5's point.
func BenchmarkAblationNoSemanticChecks(b *testing.B) {
	pool := seeds.Generate(60, 1)
	comp := compilersim.New("gcc", 14)
	for i := 0; i < b.N; i++ {
		checked := fuzz.NewMuCFuzz("checked", comp, muast.All(), pool,
			rand.New(rand.NewSource(3)))
		checked.UncheckedRate = 0
		unchecked := fuzz.NewMuCFuzz("unchecked", comp, muast.All(), pool,
			rand.New(rand.NewSource(3)))
		unchecked.UncheckedRate = 1.0
		for checked.Stats().Ticks < 600 {
			checked.Step()
		}
		for unchecked.Stats().Ticks < 600 {
			unchecked.Step()
		}
		if i == 0 {
			logOnce(b, "ablation-checks", fmt.Sprintf(
				"Ablation (semantic checks): checked %.1f%% compilable vs fully unchecked %.1f%%",
				checked.Stats().CompilableRatio(), unchecked.Stats().CompilableRatio()))
			b.ReportMetric(checked.Stats().CompilableRatio(), "checked%")
			b.ReportMetric(unchecked.Stats().CompilableRatio(), "unchecked%")
		}
	}
}

// BenchmarkAblationNoCoverageGuidance disables Algorithm 1's line-8
// admission test: blind mutation covers fewer edges from the same budget.
func BenchmarkAblationNoCoverageGuidance(b *testing.B) {
	pool := seeds.Generate(60, 1)
	comp := compilersim.New("gcc", 14)
	for i := 0; i < b.N; i++ {
		guided := fuzz.NewMuCFuzz("guided", comp, muast.All(), pool,
			rand.New(rand.NewSource(5)))
		blind := fuzz.NewMuCFuzz("blind", comp, muast.All(), pool,
			rand.New(rand.NewSource(5)))
		blind.Blind = true
		for guided.Stats().Ticks < 1200 {
			guided.Step()
		}
		for blind.Stats().Ticks < 1200 {
			blind.Step()
		}
		if i == 0 {
			logOnce(b, "ablation-guidance", fmt.Sprintf(
				"Ablation (coverage guidance): guided %d edges vs blind %d edges",
				guided.Stats().Coverage.Count(), blind.Stats().Coverage.Count()))
			b.ReportMetric(float64(guided.Stats().Coverage.Count()), "guided-edges")
			b.ReportMetric(float64(blind.Stats().Coverage.Count()), "blind-edges")
		}
	}
}

// BenchmarkAblationNoStagedFeedback replaces the staged goal-#1-to-#6
// feedback with a coarse "it does not work" message: the refinement loop
// converges far less often.
func BenchmarkAblationNoStagedFeedback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		staged := core.New(llm.NewSimClient(11), 13)
		stagedStats := core.Analyze(staged.RunUnsupervised(50))
		coarse := core.New(llm.NewSimClient(11), 13)
		coarse.CoarseFeedback = true
		coarseStats := core.Analyze(coarse.RunUnsupervised(50))
		if i == 0 {
			logOnce(b, "ablation-staged", fmt.Sprintf(
				"Ablation (staged feedback): staged %d/50 valid vs coarse %d/50 valid",
				stagedStats.ValidCount(), coarseStats.ValidCount()))
			b.ReportMetric(float64(stagedStats.ValidCount()), "staged-valid")
			b.ReportMetric(float64(coarseStats.ValidCount()), "coarse-valid")
		}
	}
}

// BenchmarkAblationNoHavoc runs the macro fuzzer with single-step
// mutation (HavocMax=1) against the stacked default. The paper credits
// stacked rounds for multi-mutation bugs (Section 5.3); in this
// simulator coverage-guided pool evolution accumulates the same
// preconditions, so expect rough parity at bench scale (recorded as an
// honest divergence in EXPERIMENTS.md).
func BenchmarkAblationNoHavoc(b *testing.B) {
	pool := seeds.Generate(60, 1)
	comp := compilersim.New("gcc", 14)
	for i := 0; i < b.N; i++ {
		run := func(havocMax int) int {
			cfg := fuzz.DefaultMacroConfig()
			cfg.HavocMax = havocMax
			shared := fuzz.NewSharedCoverage()
			w := fuzz.NewMacroFuzzer("m", comp, muast.All(), pool,
				rand.New(rand.NewSource(9)), shared, cfg)
			for w.Stats().Ticks < 2000 {
				w.Step()
			}
			return w.Stats().UniqueCrashes()
		}
		single := run(1)
		stacked := run(4)
		if i == 0 {
			logOnce(b, "ablation-havoc", fmt.Sprintf(
				"Ablation (Havoc): single-step %d unique crashes vs stacked %d",
				single, stacked))
			b.ReportMetric(float64(single), "single-crashes")
			b.ReportMetric(float64(stacked), "stacked-crashes")
		}
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks for the substrate hot paths
// ---------------------------------------------------------------------

func BenchmarkCompilePipeline(b *testing.B) {
	src := seeds.Generate(10, 3)[7]
	comp := compilersim.New("gcc", 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := comp.Compile(src, compilersim.DefaultOptions())
		if !res.OK {
			b.Fatal("seed rejected")
		}
	}
}

// BenchmarkRecordUninstrumented / BenchmarkRecordInstrumented compare
// the per-tick accounting cost with observability off vs. on. The
// instrumented path pre-resolves its metric handles, so it must stay
// within ~2x of the baseline (and allocation-free in steady state).
func BenchmarkRecordUninstrumented(b *testing.B) {
	benchRecord(b, false)
}

func BenchmarkRecordInstrumented(b *testing.B) {
	benchRecord(b, true)
}

func benchRecord(b *testing.B, instrumented bool) {
	src := seeds.Generate(10, 3)[7]
	comp := compilersim.New("gcc", 14)
	res := comp.Compile(src, compilersim.DefaultOptions())
	s := fuzz.NewStats("bench")
	if instrumented {
		s.Instrument(obs.NewRegistry())
	}
	s.Record(src, "BenchMutator", res) // absorb the first-merge coverage work
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Record(src, "BenchMutator", res)
	}
}

// BenchmarkStaticRejectPath / BenchmarkCompilersimRejectPath price the
// two ways of discarding the same invalid mutant: the mutcheck front-end
// analysis versus a full simulated compiler tick (lexing, coverage walk,
// bug checks). Their gap is the saving μCFuzz's pre-compile filter banks
// on every statically-rejected mutant.
func BenchmarkStaticRejectPath(b *testing.B) {
	src := badMutant(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, rejected := mutcheck.Reject(src); !rejected {
			b.Fatal("mutant unexpectedly accepted")
		}
	}
}

func BenchmarkCompilersimRejectPath(b *testing.B) {
	src := badMutant(b)
	comp := compilersim.New("gcc", 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := comp.Compile(src, compilersim.DefaultOptions()); res.OK {
			b.Fatal("mutant unexpectedly compiled")
		}
	}
}

// badMutant produces the canonical invalid mutant: a BadMutantBug
// rewrite (off-by-one source range eating an adjacent token) applied to
// a seed program.
func badMutant(b *testing.B) string {
	b.Helper()
	prog := &mutdsl.Program{Name: "BenchBad", Description: "d",
		TargetKind:   cast.KindBinaryOperator,
		Steps:        []mutdsl.Step{{Op: mutdsl.OpWrapText, Pre: "(", Post: " + 0)"}},
		BadMutantBug: true}
	exe, err := mutdsl.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	src := seeds.Generate(10, 3)[7]
	out := exe.Apply(src, rand.New(rand.NewSource(2)))
	if !out.Changed {
		b.Fatal("bad-mutant rewrite changed nothing")
	}
	return out.Output
}

// ---------------------------------------------------------------------
// Shared coverage: global mutex vs. sharded stripes
// ---------------------------------------------------------------------

// lockedCoverage is the pre-engine SharedCoverage design: one mutex
// around one map, serializing every novelty probe. Kept here as the
// baseline the sharded implementation is measured against.
type lockedCoverage struct {
	mu  sync.Mutex
	cov *cover.Map
}

func (l *lockedCoverage) MergeIfNew(m *cover.Map) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.cov.HasNew(m) {
		return false
	}
	l.cov.Merge(m)
	return true
}

// coverageWorkload compiles a batch of seed programs and keeps their
// edge maps. The maps overlap heavily (same compiler, similar paths),
// so after a brief warm-up almost every MergeIfNew is a pure novelty
// probe — the read-mostly steady state of a real campaign, and exactly
// where the global mutex hurts and the sharded stripes don't.
func coverageWorkload(b *testing.B) []*cover.Map {
	b.Helper()
	comp := compilersim.New("gcc", 14)
	var maps []*cover.Map
	for _, src := range seeds.Generate(32, 17) {
		if res := comp.Compile(src, compilersim.DefaultOptions()); res.Coverage != nil {
			maps = append(maps, res.Coverage)
		}
	}
	if len(maps) == 0 {
		b.Fatal("seed batch produced no coverage")
	}
	return maps
}

func benchSharedCoverage(b *testing.B, sink fuzz.CoverageSink) {
	maps := coverageWorkload(b)
	for _, m := range maps { // absorb the first-merge novelty burst
		sink.MergeIfNew(m)
	}
	b.SetParallelism(4)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			sink.MergeIfNew(maps[i%len(maps)])
			i++
		}
	})
}

func BenchmarkSharedCoverageGlobal(b *testing.B) {
	benchSharedCoverage(b, &lockedCoverage{cov: cover.NewMap()})
}

func BenchmarkSharedCoverageSharded(b *testing.B) {
	benchSharedCoverage(b, fuzz.NewSharedCoverage())
}

// ---------------------------------------------------------------------
// Engine throughput scaling
// ---------------------------------------------------------------------

// BenchmarkEngine runs the same 8-stream campaign at increasing worker
// counts. The merged result is identical at every count (that's the
// engine's determinism contract); steps/s is what scales.
func BenchmarkEngine(b *testing.B) {
	pool := seeds.Generate(60, 1)
	comp := compilersim.New("gcc", 14)
	const steps = 2048
	for _, nw := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := engine.New(engine.Config{
					Streams: 8, Workers: nw, StepsPerEpoch: 32,
					TotalSteps: steps, Seed: 77,
				}, func(stream int, rng *rand.Rand, cov fuzz.CoverageSink) engine.Worker {
					return fuzz.NewMacroFuzzer(fmt.Sprintf("bench-%d", stream),
						comp, muast.All(), pool, rng, cov, fuzz.DefaultMacroConfig())
				})
				if err := c.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
		})
	}
}

// ---------------------------------------------------------------------
// Zero-alloc hot loop: compile→cover on a reusable per-stream Context
// ---------------------------------------------------------------------

// hotLoopSeeds returns a pool of compilable programs for the hot-loop
// benchmark: every tick must take the full-pipeline path, so seeds that
// fail the front end are filtered out up front.
func hotLoopSeeds(tb testing.TB, comp *compilersim.Compiler, opts compilersim.Options) []string {
	tb.Helper()
	var pool []string
	for _, src := range seeds.Generate(24, 3) {
		if res := comp.Compile(src, opts); res.OK {
			pool = append(pool, src)
		}
	}
	if len(pool) < 8 {
		tb.Fatalf("only %d of 24 seeds compile", len(pool))
	}
	return pool
}

// BenchmarkHotLoop times the steady-state inner loop the fuzzers run per
// tick — Context.Compile into Stats.Record — over a warm seed pool. The
// Context reuses its arena, tracers, and token buffer, and Record's
// first-merge coverage work is absorbed by the warm-up, so the loop must
// report 0 allocs/op (TestHotLoopAllocBudget enforces the same budget in
// the regular test run; docs/PERFORMANCE.md records it).
func BenchmarkHotLoop(b *testing.B) {
	comp := compilersim.New("gcc", 14)
	opts := compilersim.DefaultOptions()
	pool := hotLoopSeeds(b, comp, opts)
	cx := comp.NewContext()
	s := fuzz.NewStats("hotloop")
	for _, src := range pool { // absorb first-merge coverage + crash-map work
		s.Record(src, "HotLoopBench", cx.Compile(src, opts))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := pool[i%len(pool)]
		s.Record(src, "HotLoopBench", cx.Compile(src, opts))
	}
}

// TestHotLoopAllocBudget is the always-on allocation gate for the hot
// loop: the steady-state tick must stay allocation-free. The budget is
// "< 1 alloc per tick" rather than exactly zero because the parser's
// sync.Pool can repopulate under GC pressure; a real regression (a
// per-tick slice or string) costs several allocs and trips this
// immediately.
func TestHotLoopAllocBudget(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	opts := compilersim.DefaultOptions()
	pool := hotLoopSeeds(t, comp, opts)
	cx := comp.NewContext()
	s := fuzz.NewStats("hotloop-alloc")
	for _, src := range pool {
		s.Record(src, "HotLoopBench", cx.Compile(src, opts))
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		src := pool[i%len(pool)]
		s.Record(src, "HotLoopBench", cx.Compile(src, opts))
		i++
	})
	if avg >= 1 {
		t.Fatalf("hot loop allocates: %.2f allocs/tick, budget < 1 (see docs/PERFORMANCE.md)", avg)
	}
}

func BenchmarkMutatorApplication(b *testing.B) {
	src := seeds.Generate(10, 3)[7]
	mus := muast.All()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu := mus[i%len(mus)]
		mgr, err := muast.NewManager(src, rng)
		if err != nil {
			b.Fatal(err)
		}
		mu.Apply(src, mgr)
	}
}
